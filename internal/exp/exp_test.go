package exp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/sched"
	"repro/internal/wcet"
)

func tinyFramework(t *testing.T) *core.Framework {
	t.Helper()
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 8
	opt.Swarm.Iterations = 8
	fw, err := core.New(apps.CaseStudy(), wcet.PaperPlatform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestTableIMatchesPaper(t *testing.T) {
	rows, err := TableI(apps.CaseStudy(), wcet.PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]float64{
		{907.55, 455.40, 452.15},
		{645.25, 470.25, 175.00},
		{749.15, 514.80, 234.35},
	}
	for i, r := range rows {
		if math.Abs(r.ColdUs-want[i][0]) > 1e-9 ||
			math.Abs(r.ReductionUs-want[i][1]) > 1e-9 ||
			math.Abs(r.WarmUs-want[i][2]) > 1e-9 {
			t.Errorf("row %s: got (%.2f, %.2f, %.2f), want %v", r.App, r.ColdUs, r.ReductionUs, r.WarmUs, want[i])
		}
	}
	txt := FormatTableI(rows)
	if !strings.Contains(txt, "907.55") || !strings.Contains(txt, "Guaranteed WCET Reduction") {
		t.Error("formatted Table I missing expected content")
	}
}

func TestTableIIEchoesParameters(t *testing.T) {
	rows := TableII(apps.CaseStudy())
	if rows[0].Weight != 0.4 || rows[2].Weight != 0.2 {
		t.Error("weights wrong")
	}
	if rows[1].DeadlineMs != 20 || rows[2].MaxIdleMs != 3.5 {
		t.Error("deadlines/idle bounds wrong")
	}
	txt := FormatTableII(rows)
	if !strings.Contains(txt, "Settling deadline") {
		t.Error("formatted Table II missing rows")
	}
}

func TestTableIIIAndFigure6(t *testing.T) {
	fw := tinyFramework(t)
	res, err := TableIII(fw, PaperRoundRobin, sched.Schedule{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SettleBaseMs <= 0 || r.SettleOptMs <= 0 {
			t.Errorf("%s settling non-positive", r.App)
		}
		wantImp := 100 * (r.SettleBaseMs - r.SettleOptMs) / r.SettleBaseMs
		if math.Abs(r.ImprovementPct-wantImp) > 1e-9 {
			t.Errorf("%s improvement arithmetic wrong", r.App)
		}
	}
	txt := FormatTableIII(res)
	if !strings.Contains(txt, "Control performance improvement") {
		t.Error("formatted Table III missing rows")
	}

	series, err := Figure6(fw, PaperRoundRobin, sched.Schedule{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 3 apps x 2 schedules
		t.Fatalf("series: %d", len(series))
	}
	for _, s := range series {
		if len(s.T) != len(s.Y) || len(s.T) < 100 {
			t.Errorf("series %s/%v too short: %d", s.App, s.Schedule, len(s.T))
		}
	}
	var sb strings.Builder
	if err := WriteFigure6CSV(&sb, series); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "app,schedule,t_s,y\n") {
		t.Error("CSV header wrong")
	}
	if strings.Count(sb.String(), "\n") < 600 {
		t.Error("CSV suspiciously short")
	}
}

func TestFigure6DefaultsToPaperSchedules(t *testing.T) {
	fw := tinyFramework(t)
	series, err := Figure6(fw)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series: %d", len(series))
	}
	if !series[0].Schedule.Equal(PaperRoundRobin) {
		t.Error("first series must be round robin")
	}
}

func TestSearchStatsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("search stats are slow for -short")
	}
	fw := tinyFramework(t)
	res, err := SearchStats(fw, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive.Evaluated == 0 || len(res.Hybrid.Runs) != 2 {
		t.Error("search stats incomplete")
	}
	for _, r := range res.Hybrid.Runs {
		if r.Evaluations > res.Exhaustive.Evaluated {
			t.Errorf("hybrid run used more evals (%d) than exhaustive (%d)", r.Evaluations, res.Exhaustive.Evaluated)
		}
	}
	txt := FormatSearchStats(res)
	if !strings.Contains(txt, "Exhaustive") || !strings.Contains(txt, "Hybrid") {
		t.Error("formatted search stats missing content")
	}
}

func TestSweepCaseStudyRegeneratesTables(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-backed case study is slow for -short")
	}
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 6
	opt.Swarm.Iterations = 6
	res, err := SweepCaseStudy(opt, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Run.FoundBest {
		t.Fatal("sweep found no feasible schedule")
	}
	if len(res.TableII) != 3 || res.TableII[0].Weight != 0.4 {
		t.Errorf("Table II wrong: %+v", res.TableII)
	}
	if len(res.TableIII.Rows) != 3 {
		t.Errorf("Table III rows: %d", len(res.TableIII.Rows))
	}
	if !res.TableIII.Opt.Schedule.Equal(res.Run.Best) {
		t.Errorf("Table III optimized schedule %v is not the sweep best %v",
			res.TableIII.Opt.Schedule, res.Run.Best)
	}
	// Hybrid starts and the exhaustive baseline share one cache, so the
	// engine must have recorded deduplicated evaluations.
	if res.Run.CacheStats.Hits == 0 {
		t.Error("case-study sweep recorded no cache hits")
	}
	if res.Run.Evaluated != int(res.Run.CacheStats.Misses) {
		t.Errorf("evaluated %d != misses %d", res.Run.Evaluated, res.Run.CacheStats.Misses)
	}
}

func TestBudgets(t *testing.T) {
	if QuickBudget().Swarm.Particles >= PaperBudget().Swarm.Particles {
		t.Error("paper budget should exceed quick budget")
	}
	fw, err := DefaultFramework(QuickBudget())
	if err != nil {
		t.Fatal(err)
	}
	if fw.ReportDtMax <= 0 {
		t.Error("default framework must set a reporting grid")
	}
}
