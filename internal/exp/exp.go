// Package exp regenerates every table and figure of the paper's evaluation
// (Section V) from the reproduction pipeline. Each experiment returns
// structured rows plus a formatted rendering, so the CLI tools, the HTTP
// service (cmd/served), and the benchmark harness (bench_test.go, see
// README.md) all consume the same code path. Schedule-search experiments
// run through the concurrent sweep engine of internal/engine, sharing one
// memoization cache across hybrid starts and the exhaustive baseline;
// PartitionCaseStudyWith threads an optional persistent store underneath,
// and its rows are bit-identical with or without one (the golden tests
// pin the renderings).
package exp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// PaperSchedules are the two schedules Table III compares.
var (
	PaperRoundRobin = sched.Schedule{1, 1, 1}
	PaperOptimal    = sched.Schedule{3, 2, 3}
)

// PaperStarts are the two random initializations of the paper's hybrid
// search experiment.
var PaperStarts = []sched.Schedule{{4, 2, 2}, {1, 2, 1}}

// TableIRow is one column of Table I (per application).
type TableIRow struct {
	App         string
	ColdUs      float64 // WCET w/o cache reuse
	ReductionUs float64 // guaranteed WCET reduction
	WarmUs      float64 // WCET w/ cache reuse
	ReusedLines int
}

// TableI runs the WCET/cache analysis for every application.
func TableI(applications []apps.App, plat wcet.Platform) ([]TableIRow, error) {
	rows := make([]TableIRow, len(applications))
	for i, a := range applications {
		res, err := wcet.Analyze(a.Program, plat)
		if err != nil {
			return nil, err
		}
		rows[i] = TableIRow{
			App:         a.Name,
			ColdUs:      plat.CyclesToMicros(res.ColdCycles),
			ReductionUs: plat.CyclesToMicros(res.ReductionCycles),
			WarmUs:      plat.CyclesToMicros(res.WarmCycles),
			ReusedLines: res.ReusedLines,
		}
	}
	return rows, nil
}

// FormatTableI renders Table I in the paper's layout.
func FormatTableI(rows []TableIRow) string {
	var sb strings.Builder
	sb.WriteString("TABLE I: WCET RESULTS WITH AND WITHOUT CACHE REUSE\n")
	fmt.Fprintf(&sb, "%-28s", "Application")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%12s", r.App)
	}
	sb.WriteString("\n")
	line := func(label string, f func(TableIRow) float64) {
		fmt.Fprintf(&sb, "%-28s", label)
		for _, r := range rows {
			fmt.Fprintf(&sb, "%9.2f us", f(r))
		}
		sb.WriteString("\n")
	}
	line("WCET w/o Cache Reuse", func(r TableIRow) float64 { return r.ColdUs })
	line("Guaranteed WCET Reduction", func(r TableIRow) float64 { return r.ReductionUs })
	line("WCET w/ Cache Reuse", func(r TableIRow) float64 { return r.WarmUs })
	return sb.String()
}

// TableIIRow echoes the application parameters (inputs of the case study).
type TableIIRow struct {
	App        string
	Weight     float64
	DeadlineMs float64
	MaxIdleMs  float64
}

// TableII returns the Table II parameters of the given applications.
func TableII(applications []apps.App) []TableIIRow {
	rows := make([]TableIIRow, len(applications))
	for i, a := range applications {
		rows[i] = TableIIRow{
			App:        a.Name,
			Weight:     a.Weight,
			DeadlineMs: a.SettleDeadline * 1e3,
			MaxIdleMs:  a.MaxIdle * 1e3,
		}
	}
	return rows
}

// FormatTableII renders Table II.
func FormatTableII(rows []TableIIRow) string {
	var sb strings.Builder
	sb.WriteString("TABLE II: APPLICATION PARAMETERS\n")
	fmt.Fprintf(&sb, "%-30s", "Application")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10s", r.App)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-30s", "Weight (w_i)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10.1f", r.Weight)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-30s", "Settling deadline (ms)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10.1f", r.DeadlineMs)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-30s", "Max allowed idle time (ms)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10.1f", r.MaxIdleMs)
	}
	sb.WriteString("\n")
	return sb.String()
}

// TableIIIRow is one application's comparison between two schedules.
type TableIIIRow struct {
	App            string
	SettleBaseMs   float64 // settling under the baseline schedule
	SettleOptMs    float64 // settling under the optimized schedule
	ImprovementPct float64
}

// TableIII compares two schedules through the framework.
type TableIIIResult struct {
	Rows     []TableIIIRow
	Base     *core.ScheduleEval
	Opt      *core.ScheduleEval
	PallBase float64
	PallOpt  float64
}

// TableIII evaluates both schedules and assembles the comparison.
func TableIII(fw *core.Framework, base, opt sched.Schedule) (*TableIIIResult, error) {
	evBase, err := fw.EvaluateSchedule(base)
	if err != nil {
		return nil, err
	}
	evOpt, err := fw.EvaluateSchedule(opt)
	if err != nil {
		return nil, err
	}
	res := &TableIIIResult{Base: evBase, Opt: evOpt, PallBase: evBase.Pall, PallOpt: evOpt.Pall}
	for i := range evBase.Apps {
		sb := evBase.Apps[i].Design.SettlingTime
		so := evOpt.Apps[i].Design.SettlingTime
		res.Rows = append(res.Rows, TableIIIRow{
			App:            evBase.Apps[i].Name,
			SettleBaseMs:   sb * 1e3,
			SettleOptMs:    so * 1e3,
			ImprovementPct: 100 * (sb - so) / sb,
		})
	}
	return res, nil
}

// FormatTableIII renders the comparison in the paper's layout.
func FormatTableIII(r *TableIIIResult) string {
	var sb strings.Builder
	sb.WriteString("TABLE III: CONTROL PERFORMANCE COMPARISON\n")
	fmt.Fprintf(&sb, "%-36s", "Application")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%10s", row.App)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "Settling time for %-18v", r.Base.Schedule)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%7.1f ms", row.SettleBaseMs)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "Settling time for %-18v", r.Opt.Schedule)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%7.1f ms", row.SettleOptMs)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-36s", "Control performance improvement")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8.0f %%", row.ImprovementPct)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "P_all %v = %.4f, P_all %v = %.4f\n",
		r.Base.Schedule, r.PallBase, r.Opt.Schedule, r.PallOpt)
	return sb.String()
}

// Figure6Series is the system-output trajectory of one application under
// one schedule.
type Figure6Series struct {
	App      string
	Schedule sched.Schedule
	T        []float64
	Y        []float64
}

// Figure6 produces the dense output responses of every application under
// the two compared schedules (the paper's Fig. 6).
func Figure6(fw *core.Framework, schedules ...sched.Schedule) ([]Figure6Series, error) {
	if len(schedules) == 0 {
		schedules = []sched.Schedule{PaperRoundRobin, PaperOptimal}
	}
	var out []Figure6Series
	for _, s := range schedules {
		ev, err := fw.EvaluateSchedule(s)
		if err != nil {
			return nil, err
		}
		for _, ar := range ev.Apps {
			tr := ar.Design.Trajectory
			if tr == nil {
				return nil, fmt.Errorf("exp: schedule %v app %s has no trajectory", s, ar.Name)
			}
			series := Figure6Series{App: ar.Name, Schedule: s}
			for _, smp := range tr.Dense {
				series.T = append(series.T, smp.T)
				series.Y = append(series.Y, smp.Y)
			}
			out = append(out, series)
		}
	}
	return out, nil
}

// WriteFigure6CSV writes the series in long form: app,schedule,t,y.
func WriteFigure6CSV(w io.Writer, series []Figure6Series) error {
	if _, err := fmt.Fprintln(w, "app,schedule,t_s,y"); err != nil {
		return err
	}
	for _, s := range series {
		label := strings.ReplaceAll(strings.Trim(s.Schedule.String(), "()"), " ", "")
		for i := range s.T {
			if _, err := fmt.Fprintf(w, "%s,%s,%.6g,%.6g\n", s.App, label, s.T[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// PartitionPlatform is one named cache variant of the partitioned case
// study (Table IV): the paper's direct-mapped baseline has no partitionable
// ways, the associative variants trade per-way capacity against the number
// of applications that can own a private partition.
type PartitionPlatform struct {
	Name     string
	Platform wcet.Platform
}

// PartitionPlatforms returns the platform variants of the partitioned case
// study. On "paper" the joint space degenerates to the shared subspace; on
// "4way-256" partitions exist but a single way's 64 lines are too small for
// the case-study programs, so sharing stays optimal; on "4way-512" and
// "8way-512" dedicated partitions eliminate the cold start of every burst
// and the joint optimum beats the schedule-only one.
func PartitionPlatforms() []PartitionPlatform {
	mk := func(lines, ways int) wcet.Platform {
		return wcet.Platform{ClockHz: 20e6, Cache: cachesim.Config{
			Lines: lines, LineSize: 16, Ways: ways, Policy: cachesim.LRU,
			HitCycles: 1, MissCycles: 100,
		}}
	}
	return []PartitionPlatform{
		{Name: "paper-128x1", Platform: wcet.PaperPlatform()},
		{Name: "4way-256", Platform: mk(256, 4)},
		{Name: "4way-512", Platform: mk(512, 4)},
		{Name: "8way-512", Platform: mk(512, 8)},
	}
}

// PartitionRow is one platform variant's comparison between the
// schedule-only optimum and the joint cache-partition + schedule optimum.
type PartitionRow struct {
	Platform   string
	Ways       int
	Evaluated  int            // joint points evaluated by the exhaustive pass
	SharedBest sched.Schedule // schedule-only optimum (shared subspace)
	SharedPall float64
	JointBest  sched.JointSchedule // joint optimum
	JointPall  float64
	GainPct    float64 // 100 * (joint - shared) / shared
}

// PartitionCaseStudy runs the joint co-design on the case-study taskset
// over every partition platform variant, through the sweep engine's
// Partitioned scenario axis with the timing objective (exact and
// deterministic, so the rows are stable enough to golden-test).
func PartitionCaseStudy(maxM int, tolerance float64) ([]PartitionRow, error) {
	return PartitionCaseStudyWith(maxM, tolerance, engine.Config{Workers: 1})
}

// PartitionCaseStudyWith is PartitionCaseStudy under an explicit engine
// configuration, so callers can attach a persistent store and resume from
// checkpoints (cmd/partsearch -store/-resume, cmd/served /v1/table/IV).
// Rows are bit-identical for any configuration.
func PartitionCaseStudyWith(maxM int, tolerance float64, cfg engine.Config) ([]PartitionRow, error) {
	variants := PartitionPlatforms()
	scenarios := make([]engine.Scenario, len(variants))
	for i, v := range variants {
		scenarios[i] = engine.Scenario{
			Name:        v.Name,
			Seed:        1,
			Apps:        apps.CaseStudy(),
			Platform:    v.Platform,
			Objective:   engine.ObjectiveTiming,
			Partitioned: true,
			Exhaustive:  true,
			MaxM:        maxM,
			Tolerance:   tolerance,
		}
	}
	results, err := engine.Sweep(cfg, scenarios)
	if err != nil {
		return nil, err
	}
	rows := make([]PartitionRow, len(results))
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("exp: partition case study %s pending in another shard", variants[i].Name)
		}
		ex := res.JointExhaustive
		if ex == nil || !ex.FoundBest || !ex.FoundShared {
			return nil, fmt.Errorf("exp: partition case study %s found no optimum", res.Name)
		}
		rows[i] = PartitionRow{
			Platform:   res.Name,
			Ways:       variants[i].Platform.Cache.Ways,
			Evaluated:  ex.Evaluated,
			SharedBest: ex.BestShared.M,
			SharedPall: ex.BestSharedValue,
			JointBest:  ex.Best,
			JointPall:  ex.BestValue,
			GainPct:    100 * (ex.BestValue - ex.BestSharedValue) / ex.BestSharedValue,
		}
	}
	return rows, nil
}

// FormatPartitionTable renders the partitioned case study in the style of
// the paper's tables.
func FormatPartitionTable(rows []PartitionRow) string {
	var sb strings.Builder
	sb.WriteString("TABLE IV: JOINT CACHE-PARTITION + SCHEDULE CO-DESIGN\n")
	fmt.Fprintf(&sb, "%-12s %4s %8s  %-14s %8s  %-22s %8s %8s\n",
		"Platform", "Ways", "Points", "Schedule-only", "P_all", "Joint (m)x[w]", "P_all", "Gain")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %4d %8d  %-14s %8.4f  %-22s %8.4f %+7.1f%%\n",
			r.Platform, r.Ways, r.Evaluated,
			r.SharedBest.String(), r.SharedPall,
			r.JointBest.String(), r.JointPall, r.GainPct)
	}
	return sb.String()
}

// MulticoreRow is one platform variant's multi-core co-design comparison:
// the single-core joint optimum against the placement x partition x
// schedule optimum on Cores cores, plus the uniform-split baseline that
// fixes every core to the even way split.
type MulticoreRow struct {
	Platform string
	Ways     int
	Cores    int

	SinglePall  float64 // single-core joint optimum (Table IV's)
	MultiPall   float64 // placement co-design optimum
	UniformPall float64 // placement optimum under uniform splits
	GainPct     float64 // 100 * (multi - single) / single
	SplitPct    float64 // 100 * (multi - uniform) / uniform

	Assignment []int                 // winning canonical placement
	PerCore    []search.CoreSolution // winning per-core joint points

	Evaluated         int // core points visited (branch-and-bound)
	JointPruned       int // subtrees cut in the single-core joint pass
	AssignmentsPruned int // placements cut before any core solve
	SubtreesPruned    int // subtrees cut inside per-core searches
}

// MulticoreCaseStudy runs the multi-core co-design on the case-study
// taskset over every partition platform variant with the branch-and-bound
// searchers (pinned exact by TestMulticoreBranchBoundMatchesGolden).
func MulticoreCaseStudy(maxM int, tolerance float64, cores int) ([]MulticoreRow, error) {
	return MulticoreCaseStudyWith(maxM, tolerance, cores, engine.Config{Workers: 1})
}

// MulticoreScenarios returns the per-platform scenarios of the multi-core
// case study; the branchBound flag selects the searchers (the optimum is
// pinned identical either way).
func MulticoreScenarios(maxM int, tolerance float64, cores int, branchBound bool) []engine.Scenario {
	variants := PartitionPlatforms()
	scenarios := make([]engine.Scenario, len(variants))
	for i, v := range variants {
		scenarios[i] = engine.Scenario{
			Name:        v.Name,
			Seed:        1,
			Apps:        apps.CaseStudy(),
			Platform:    v.Platform,
			Objective:   engine.ObjectiveTiming,
			Exhaustive:  true,
			BranchBound: branchBound,
			Cores:       cores,
			MaxM:        maxM,
			Tolerance:   tolerance,
		}
	}
	return scenarios
}

// MulticoreCaseStudyWith is MulticoreCaseStudy under an explicit engine
// configuration (store, resume, workers). Rows are bit-identical for any
// configuration — the engine's determinism guarantee extends across the
// placement axis.
func MulticoreCaseStudyWith(maxM int, tolerance float64, cores int, cfg engine.Config) ([]MulticoreRow, error) {
	variants := PartitionPlatforms()
	results, err := engine.Sweep(cfg, MulticoreScenarios(maxM, tolerance, cores, true))
	if err != nil {
		return nil, err
	}
	rows := make([]MulticoreRow, len(results))
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("exp: multicore case study %s pending in another shard", variants[i].Name)
		}
		ex, mc, uni := res.JointExhaustive, res.Multicore, res.MulticoreUniform
		if ex == nil || !ex.FoundBest || mc == nil || !mc.FoundBest || uni == nil || !uni.FoundBest {
			return nil, fmt.Errorf("exp: multicore case study %s found no optimum", res.Name)
		}
		rows[i] = MulticoreRow{
			Platform:          res.Name,
			Ways:              variants[i].Platform.Cache.Ways,
			Cores:             cores,
			SinglePall:        ex.BestValue,
			MultiPall:         mc.BestValue,
			UniformPall:       uni.BestValue,
			GainPct:           100 * (mc.BestValue - ex.BestValue) / ex.BestValue,
			SplitPct:          100 * (mc.BestValue - uni.BestValue) / uni.BestValue,
			Assignment:        mc.Assignment,
			PerCore:           mc.PerCore,
			Evaluated:         mc.Evaluated,
			JointPruned:       res.JointPruned,
			AssignmentsPruned: mc.AssignmentsPruned,
			SubtreesPruned:    mc.SubtreesPruned,
		}
	}
	return rows, nil
}

// FormatMulticoreTable renders the multi-core case study in the style of
// the paper's tables: per platform, the single-core joint optimum, the
// placement co-design optimum with its winning placement and per-core
// points, and the uniform-split comparison.
func FormatMulticoreTable(rows []MulticoreRow) string {
	var sb strings.Builder
	cores := 0
	if len(rows) > 0 {
		cores = rows[0].Cores
	}
	fmt.Fprintf(&sb, "TABLE V: MULTI-CORE PLACEMENT + PARTITION + SCHEDULE CO-DESIGN (%d CORES)\n", cores)
	fmt.Fprintf(&sb, "%-12s %4s %8s  %8s %8s %8s  %8s %8s  %-10s %s\n",
		"Platform", "Ways", "Points", "1-core", "Uniform", "P_all", "Gain", "Split+", "Placement", "Per-core (m)x[w]")
	for _, r := range rows {
		var pc strings.Builder
		for c, sol := range r.PerCore {
			if c > 0 {
				pc.WriteString("  ")
			}
			pc.WriteString(sol.Point.String())
		}
		fmt.Fprintf(&sb, "%-12s %4d %8d  %8.4f %8.4f %8.4f  %+7.1f%% %+7.1f%%  %-10s %s\n",
			r.Platform, r.Ways, r.Evaluated,
			r.SinglePall, r.UniformPall, r.MultiPall,
			r.GainPct, r.SplitPct,
			fmt.Sprint(r.Assignment), pc.String())
	}
	return sb.String()
}

// ScenarioPlatforms returns the platform variants of the scenario-diversity
// case study (Table VI): the paper's single-level baseline and the same L1
// backed by a 512-line 4-way LRU L2 (hit 10 cycles) in inclusive and
// exclusive (victim) modes. The inclusive L2 absorbs part of every
// guaranteed L1 miss, so that variant starts from shorter WCETs; the
// exclusive variant is analyzed conservatively (no L2 hit guarantees), so
// its rows pin bit-identical to the single-level baseline — documenting
// exactly what the victim-cache analysis does not claim.
func ScenarioPlatforms() []PartitionPlatform {
	paper := wcet.PaperPlatform()
	l2 := cachesim.Config{
		Lines: 512, LineSize: paper.Cache.LineSize, Ways: 4, Policy: cachesim.LRU,
		HitCycles: 10, MissCycles: paper.Cache.MissCycles,
	}
	incl, excl := paper, paper
	incl.Hier = cachesim.Hierarchy{L2: l2}
	excl.Hier = cachesim.Hierarchy{L2: l2, Exclusive: true}
	return []PartitionPlatform{
		{Name: "paper-128x1", Platform: paper},
		{Name: "l1l2-incl", Platform: incl},
		{Name: "l1l2-excl", Platform: excl},
	}
}

// TableVIJitters are the release-jitter levels of the scenario-diversity
// case study; 0 is the periodic baseline every degradation is measured
// against.
func TableVIJitters() []float64 { return []float64{0, 0.05, 0.1, 0.25} }

// TableVIRow is one (platform, jitter) cell of the scenario-diversity case
// study: the exhaustive timing optimum under sporadic releases with that
// jitter bound, and its degradation against the periodic (zero-jitter)
// optimum on the same platform.
type TableVIRow struct {
	Platform  string
	Jitter    float64
	Evaluated int            // schedules evaluated by the exhaustive pass
	Best      sched.Schedule // optimum under this arrival model
	Pall      float64
	// DegradePct is 100 * (periodic - this) / periodic. Usually positive;
	// small jitter can push it slightly negative, because a delayed release
	// reorders the FCFS queue and can shrink another app's worst observed
	// sampling gap below the periodic worst case.
	DegradePct float64
}

// ScenarioDiversityScenarios returns the Table VI scenario grid: the
// case-study taskset on every scenario platform crossed with every jitter
// level, under the sporadic arrival model (seed 7, default cycles). The
// zero-jitter column normalizes to the periodic engine, so its rows double
// as the metamorphic pin for the arrival axis.
func ScenarioDiversityScenarios(maxM int, tolerance float64) []engine.Scenario {
	variants := ScenarioPlatforms()
	jitters := TableVIJitters()
	scenarios := make([]engine.Scenario, 0, len(variants)*len(jitters))
	for _, v := range variants {
		for _, j := range jitters {
			scenarios = append(scenarios, engine.Scenario{
				Name:       fmt.Sprintf("%s-j%03.0f", v.Name, 100*j),
				Seed:       1,
				Apps:       apps.CaseStudy(),
				Platform:   v.Platform,
				Arrival:    sched.Arrival{Model: sched.ArrivalSporadic, Jitter: j, Seed: 7},
				Objective:  engine.ObjectiveTiming,
				Exhaustive: true,
				MaxM:       maxM,
				Tolerance:  tolerance,
			})
		}
	}
	return scenarios
}

// ScenarioDiversityCaseStudy runs the scenario-diversity sweep (Table VI):
// exact, deterministic rows pinned by the golden test.
func ScenarioDiversityCaseStudy(maxM int, tolerance float64) ([]TableVIRow, error) {
	return ScenarioDiversityCaseStudyWith(maxM, tolerance, engine.Config{Workers: 1})
}

// ScenarioDiversityCaseStudyWith is ScenarioDiversityCaseStudy under an
// explicit engine configuration (store, resume, workers). Rows are
// bit-identical for any configuration.
func ScenarioDiversityCaseStudyWith(maxM int, tolerance float64, cfg engine.Config) ([]TableVIRow, error) {
	scenarios := ScenarioDiversityScenarios(maxM, tolerance)
	results, err := engine.Sweep(cfg, scenarios)
	if err != nil {
		return nil, err
	}
	jitters := TableVIJitters()
	rows := make([]TableVIRow, len(results))
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("exp: scenario diversity %s pending in another shard", scenarios[i].Name)
		}
		ex := res.Exhaustive
		if ex == nil || !ex.FoundBest {
			return nil, fmt.Errorf("exp: scenario diversity %s found no optimum", res.Name)
		}
		rows[i] = TableVIRow{
			Platform:  scenarios[i].Name[:len(scenarios[i].Name)-5], // strip "-jNNN"
			Jitter:    jitters[i%len(jitters)],
			Evaluated: ex.Evaluated,
			Best:      ex.Best,
			Pall:      ex.BestValue,
		}
		base := rows[i-i%len(jitters)].Pall // zero-jitter row of this platform
		rows[i].DegradePct = 100 * (base - rows[i].Pall) / base
	}
	return rows, nil
}

// FormatTableVI renders the scenario-diversity case study: per platform,
// the P_all optimum of each jitter level and its degradation against the
// periodic baseline.
func FormatTableVI(rows []TableVIRow) string {
	var sb strings.Builder
	sb.WriteString("TABLE VI: P_ALL DEGRADATION UNDER SPORADIC RELEASE JITTER\n")
	fmt.Fprintf(&sb, "%-12s %7s %8s  %-10s %8s %10s\n",
		"Platform", "Jitter", "Points", "Best m", "P_all", "Degrade")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %6.0f%% %8d  %-10s %8.4f %9.1f%%\n",
			r.Platform, 100*r.Jitter, r.Evaluated, r.Best.String(), r.Pall, r.DegradePct)
	}
	return sb.String()
}

// SearchStatsResult reproduces the Section V search experiment.
type SearchStatsResult struct {
	Hybrid     *search.HybridResult
	Exhaustive *search.ExhaustiveResult
}

// SearchStats runs the hybrid search from the paper's two starts and the
// exhaustive baseline. Both share one memoization cache, so a schedule the
// hybrid walks already evaluated is free for the exhaustive pass (per-run
// counts still attribute each evaluation to the walk that executed it).
func SearchStats(fw *core.Framework, maxM int, tolerance float64) (*SearchStatsResult, error) {
	cache := fw.SearchCache()
	hy, err := fw.OptimizeHybrid(PaperStarts, search.Options{Tolerance: tolerance, MaxM: maxM, Cache: cache})
	if err != nil {
		return nil, err
	}
	ex, err := fw.OptimizeExhaustiveParallel(maxM, 1, cache)
	if err != nil {
		return nil, err
	}
	return &SearchStatsResult{Hybrid: hy, Exhaustive: ex}, nil
}

// CaseStudyScenario is the paper's Section V experiment phrased as a sweep
// scenario: the three case-study applications on the paper platform, hybrid
// search from the paper's two starts plus the exhaustive baseline, all
// deduplicated through one evaluation cache.
func CaseStudyScenario(budget ctrl.DesignOptions, maxM int, tolerance float64) engine.Scenario {
	return engine.Scenario{
		Name:       "case-study",
		Seed:       1,
		Apps:       apps.CaseStudy(),
		Platform:   wcet.PaperPlatform(),
		Objective:  engine.ObjectiveDesign,
		Budget:     budget,
		MaxM:       maxM,
		Tolerance:  tolerance,
		StartList:  PaperStarts,
		Exhaustive: true,
	}
}

// CaseStudySweepResult bundles the engine run with the regenerated tables.
type CaseStudySweepResult struct {
	Run      *engine.Result
	TableII  []TableIIRow
	TableIII *TableIIIResult
}

// SweepCaseStudy regenerates Tables II and III through the sweep engine:
// it runs the case-study scenario, then compares the paper's round-robin
// baseline against the best schedule the sweep found.
func SweepCaseStudy(budget ctrl.DesignOptions, maxM int, tolerance float64) (*CaseStudySweepResult, error) {
	results, err := engine.Sweep(engine.Config{Workers: 1}, []engine.Scenario{
		CaseStudyScenario(budget, maxM, tolerance),
	})
	if err != nil {
		return nil, err
	}
	run := results[0]
	if !run.FoundBest {
		return nil, fmt.Errorf("exp: case-study sweep found no feasible schedule")
	}
	t3, err := TableIII(run.Framework, PaperRoundRobin, run.Best)
	if err != nil {
		return nil, err
	}
	return &CaseStudySweepResult{
		Run:      run,
		TableII:  TableII(apps.CaseStudy()),
		TableIII: t3,
	}, nil
}

// FormatSearchStats renders the search-efficiency comparison.
func FormatSearchStats(r *SearchStatsResult) string {
	var sb strings.Builder
	sb.WriteString("SCHEDULE SEARCH (Section V)\n")
	fmt.Fprintf(&sb, "Exhaustive: %d schedules evaluated (%d feasible), best %v with P_all = %.4f\n",
		r.Exhaustive.Evaluated, r.Exhaustive.Feasible, r.Exhaustive.Best, r.Exhaustive.BestValue)
	for _, run := range r.Hybrid.Runs {
		pct := 100 * float64(run.Evaluations) / float64(max(1, r.Exhaustive.Evaluated))
		fmt.Fprintf(&sb, "Hybrid from %v: best %v (P_all = %.4f) in %d evaluations (%.1f%% of brute force)\n",
			run.Start, run.Best, run.BestValue, run.Evaluations, pct)
	}
	fmt.Fprintf(&sb, "Evaluations executed across all hybrid walks: %d (cache hit rate %.0f%%)\n",
		r.Hybrid.TotalEvaluations, 100*r.Hybrid.CacheStats.HitRate())
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DefaultFramework builds the paper case-study framework with the given
// design budget (see ctrl.DesignOptions) and a fine reporting grid.
func DefaultFramework(budget ctrl.DesignOptions) (*core.Framework, error) {
	fw, err := core.New(apps.CaseStudy(), wcet.PaperPlatform(), budget)
	if err != nil {
		return nil, err
	}
	fw.ReportDtMax = 10e-6
	return fw, nil
}

// QuickBudget is a small deterministic design budget for tests and smoke
// runs; PaperBudget is the budget used for the reported experiments.
func QuickBudget() ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 16
	opt.Swarm.Iterations = 25
	return opt
}

// TinyBudget is the minimal budget the CLI smoke tests use: designs are low
// quality but every pipeline stage still runs.
func TinyBudget() ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 4
	opt.Swarm.Iterations = 5
	return opt
}

// Budget maps a CLI budget name to design options (default quick). It is
// the single source of the name-to-options mapping for every command.
func Budget(name string) ctrl.DesignOptions {
	switch name {
	case "paper":
		return PaperBudget()
	case "tiny":
		return TinyBudget()
	case "deep":
		var opt ctrl.DesignOptions
		opt.Swarm.Particles = 64
		opt.Swarm.Iterations = 150
		return opt
	default:
		return QuickBudget()
	}
}

// PaperBudget returns the full experiment design budget.
func PaperBudget() ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 32
	opt.Swarm.Iterations = 60
	return opt
}
