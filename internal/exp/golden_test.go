package exp

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// Golden/snapshot tests for the table renderings. The fixtures are pure
// formatting inputs (no pipeline run), so any rendering drift — spacing,
// headers, rounding — fails the diff. Regenerate with:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTableI(t *testing.T) {
	rows := []TableIRow{
		{App: "C1", ColdUs: 907.55, ReductionUs: 455.40, WarmUs: 452.15, ReusedLines: 92},
		{App: "C2", ColdUs: 645.25, ReductionUs: 470.25, WarmUs: 175.00, ReusedLines: 95},
		{App: "C3", ColdUs: 749.15, ReductionUs: 514.80, WarmUs: 234.35, ReusedLines: 104},
	}
	checkGolden(t, "table1.golden", FormatTableI(rows))
}

func TestGoldenTableII(t *testing.T) {
	rows := []TableIIRow{
		{App: "C1", Weight: 0.4, DeadlineMs: 45, MaxIdleMs: 3.4},
		{App: "C2", Weight: 0.4, DeadlineMs: 20, MaxIdleMs: 3.9},
		{App: "C3", Weight: 0.2, DeadlineMs: 17.5, MaxIdleMs: 3.5},
	}
	checkGolden(t, "table2.golden", FormatTableII(rows))
}

func TestGoldenTableIII(t *testing.T) {
	res := &TableIIIResult{
		Rows: []TableIIIRow{
			{App: "C1", SettleBaseMs: 44.9, SettleOptMs: 29.3, ImprovementPct: 35},
			{App: "C2", SettleBaseMs: 19.8, SettleOptMs: 11.7, ImprovementPct: 41},
			{App: "C3", SettleBaseMs: 17.3, SettleOptMs: 12.4, ImprovementPct: 28},
		},
		Base:     &core.ScheduleEval{Schedule: sched.Schedule{1, 1, 1}},
		Opt:      &core.ScheduleEval{Schedule: sched.Schedule{3, 2, 3}},
		PallBase: 0.0513,
		PallOpt:  0.3592,
	}
	checkGolden(t, "table3.golden", FormatTableIII(res))
}

func TestGoldenSearchStats(t *testing.T) {
	res := &SearchStatsResult{
		Exhaustive: &search.ExhaustiveResult{
			Evaluated: 76,
			Feasible:  71,
			Best:      sched.Schedule{3, 2, 3},
			BestValue: 0.3592,
			FoundBest: true,
		},
		Hybrid: &search.HybridResult{
			Runs: []search.RunStats{
				{Start: sched.Schedule{4, 2, 2}, Best: sched.Schedule{3, 2, 3}, BestValue: 0.3592, FoundBest: true, Evaluations: 9},
				{Start: sched.Schedule{1, 2, 1}, Best: sched.Schedule{3, 2, 3}, BestValue: 0.3592, FoundBest: true, Evaluations: 18},
			},
			Best:             sched.Schedule{3, 2, 3},
			BestValue:        0.3592,
			FoundBest:        true,
			TotalEvaluations: 24,
		},
	}
	res.Hybrid.CacheStats.Hits = 8
	res.Hybrid.CacheStats.Misses = 24
	checkGolden(t, "searchstats.golden", FormatSearchStats(res))
}

// partitionFixture is the expected outcome of the partitioned case study
// (Table IV) at maxM=6, tolerance 0.01: the values PartitionCaseStudy must
// reproduce exactly (cross-checked by TestPartitionGoldenMatchesPipeline).
func partitionFixture() []PartitionRow {
	return []PartitionRow{
		{Platform: "paper-128x1", Ways: 1, Evaluated: 73,
			SharedBest: sched.Schedule{2, 3, 2}, SharedPall: 0.4509380507074625,
			JointBest: sched.SharedPoint(sched.Schedule{2, 3, 2}), JointPall: 0.4509380507074625, GainPct: 0},
		{Platform: "4way-256", Ways: 4, Evaluated: 283,
			SharedBest: sched.Schedule{2, 4, 2}, SharedPall: 0.5516094408532644,
			JointBest: sched.SharedPoint(sched.Schedule{2, 4, 2}), JointPall: 0.5516094408532644, GainPct: 0},
		{Platform: "4way-512", Ways: 4, Evaluated: 1009,
			SharedBest: sched.Schedule{2, 4, 2}, SharedPall: 0.5516094408532644,
			JointBest: sched.JointSchedule{M: sched.Schedule{1, 1, 1}, W: sched.Ways{2, 1, 1}},
			JointPall: 0.8049923895712131, GainPct: 45.935208854656295},
		{Platform: "8way-512", Ways: 8, Evaluated: 5436,
			SharedBest: sched.Schedule{2, 4, 2}, SharedPall: 0.5516094408532644,
			JointBest: sched.JointSchedule{M: sched.Schedule{1, 1, 1}, W: sched.Ways{3, 2, 3}},
			JointPall: 0.8214672182719241, GainPct: 48.92189245369455},
	}
}

func TestGoldenPartitionTable(t *testing.T) {
	checkGolden(t, "partition.golden", FormatPartitionTable(partitionFixture()))
}

// TestPartitionGoldenMatchesPipeline re-runs the joint co-design and checks
// it reproduces the fixture exactly, that the joint optimum dominates the
// schedule-only optimum everywhere (the shared subspace is contained in the
// joint box), that it is *strictly* better on at least one platform
// variant, and that on the single-way paper platform — where no partition
// exists — the joint optimum is bit-identical to the schedule-only one.
func TestPartitionGoldenMatchesPipeline(t *testing.T) {
	rows, err := PartitionCaseStudy(6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := partitionFixture()
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	strictWin := false
	for i, r := range rows {
		w := want[i]
		if r.Platform != w.Platform || r.Ways != w.Ways || r.Evaluated != w.Evaluated ||
			!r.SharedBest.Equal(w.SharedBest) || !r.JointBest.Equal(w.JointBest) ||
			math.Float64bits(r.SharedPall) != math.Float64bits(w.SharedPall) ||
			math.Float64bits(r.JointPall) != math.Float64bits(w.JointPall) {
			t.Errorf("row %d: pipeline %+v drifted from fixture %+v", i, r, w)
		}
		if r.JointPall < r.SharedPall {
			t.Errorf("%s: joint optimum %.6f below schedule-only optimum %.6f", r.Platform, r.JointPall, r.SharedPall)
		}
		if r.JointPall > r.SharedPall {
			strictWin = true
		}
	}
	if !strictWin {
		t.Error("joint search never beat the schedule-only optimum on any platform variant")
	}
	if paper := rows[0]; !paper.JointBest.Shared() ||
		math.Float64bits(paper.JointPall) != math.Float64bits(paper.SharedPall) {
		t.Errorf("paper platform: joint optimum %v (%.6f) must be bit-identical to the shared one (%.6f)",
			paper.JointBest, paper.JointPall, paper.SharedPall)
	}
}

// multicoreFixture is the expected outcome of the multi-core co-design
// case study (Table V) at maxM=6, tolerance 0.01, 2 cores: the values
// MulticoreCaseStudy must reproduce exactly (cross-checked by
// TestMulticoreGoldenMatchesPipeline). On every platform variant the
// optimum isolates C1 on its own core; the per-core way splits the
// co-design picks happen to tie the uniform even split on this taskset,
// so SplitPct pins to zero.
func multicoreFixture() []MulticoreRow {
	return []MulticoreRow{
		{Platform: "paper-128x1", Ways: 1, Cores: 2,
			SinglePall: 0.4509380507074625, MultiPall: 0.7901715539036127,
			UniformPall: 0.7901715539036127, GainPct: 75.22840502457875, SplitPct: 0,
			Assignment: []int{0, 1, 1},
			PerCore: []search.CoreSolution{
				{Apps: []int{0}, Point: sched.JointSchedule{M: sched.Schedule{1}, W: sched.Ways{1}}, Value: 0.3468058823529412, Found: true},
				{Apps: []int{1, 2}, Point: sched.JointSchedule{M: sched.Schedule{3, 2}}, Value: 0.4433656715506716, Found: true},
			},
			Evaluated: 34, JointPruned: 67, SubtreesPruned: 109},
		{Platform: "4way-256", Ways: 4, Cores: 2,
			SinglePall: 0.5516094408532644, MultiPall: 0.8865413186813187,
			UniformPall: 0.8865413186813187, GainPct: 60.719025640670786, SplitPct: 0,
			Assignment: []int{0, 1, 1},
			PerCore: []search.CoreSolution{
				{Apps: []int{0}, Point: sched.JointSchedule{M: sched.Schedule{1}, W: sched.Ways{4}}, Value: 0.37010000000000004, Found: true},
				{Apps: []int{1, 2}, Point: sched.JointSchedule{M: sched.Schedule{1, 1}, W: sched.Ways{2, 2}}, Value: 0.5164413186813187, Found: true},
			},
			Evaluated: 52, JointPruned: 261, SubtreesPruned: 520},
		{Platform: "4way-512", Ways: 4, Cores: 2,
			SinglePall: 0.8049923895712131, MultiPall: 0.9410892307692309,
			UniformPall: 0.9410892307692309, GainPct: 16.906599734503214, SplitPct: 0,
			Assignment: []int{0, 1, 1},
			PerCore: []search.CoreSolution{
				{Apps: []int{0}, Point: sched.JointSchedule{M: sched.Schedule{1}, W: sched.Ways{3}}, Value: 0.37010000000000004, Found: true},
				{Apps: []int{1, 2}, Point: sched.JointSchedule{M: sched.Schedule{1, 1}, W: sched.Ways{2, 2}}, Value: 0.5709892307692308, Found: true},
			},
			Evaluated: 57, JointPruned: 460, SubtreesPruned: 724},
		{Platform: "8way-512", Ways: 8, Cores: 2,
			SinglePall: 0.8214672182719241, MultiPall: 0.9410892307692309,
			UniformPall: 0.9410892307692309, GainPct: 14.561994664735261, SplitPct: 0,
			Assignment: []int{0, 1, 1},
			PerCore: []search.CoreSolution{
				{Apps: []int{0}, Point: sched.JointSchedule{M: sched.Schedule{1}, W: sched.Ways{4}}, Value: 0.37010000000000004, Found: true},
				{Apps: []int{1, 2}, Point: sched.JointSchedule{M: sched.Schedule{1, 1}, W: sched.Ways{3, 3}}, Value: 0.5709892307692308, Found: true},
			},
			Evaluated: 63, JointPruned: 2222, SubtreesPruned: 2179},
	}
}

func TestGoldenMulticoreTable(t *testing.T) {
	checkGolden(t, "multicore.golden", FormatMulticoreTable(multicoreFixture()))
}

// TestMulticoreGoldenMatchesPipeline re-runs the multi-core co-design and
// checks it reproduces the fixture exactly, that the placement optimum
// dominates both the single-core joint optimum and the uniform-split
// baseline everywhere, and that the rows are bit-identical under a
// parallel sweep (the engine's determinism guarantee across the
// placement axis).
func TestMulticoreGoldenMatchesPipeline(t *testing.T) {
	rows, err := MulticoreCaseStudy(6, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := multicoreFixture()
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		w := want[i]
		if r.Platform != w.Platform || r.Ways != w.Ways || r.Cores != w.Cores ||
			math.Float64bits(r.SinglePall) != math.Float64bits(w.SinglePall) ||
			math.Float64bits(r.MultiPall) != math.Float64bits(w.MultiPall) ||
			math.Float64bits(r.UniformPall) != math.Float64bits(w.UniformPall) ||
			!reflect.DeepEqual(r.Assignment, w.Assignment) ||
			!reflect.DeepEqual(r.PerCore, w.PerCore) ||
			r.Evaluated != w.Evaluated || r.JointPruned != w.JointPruned ||
			r.AssignmentsPruned != w.AssignmentsPruned || r.SubtreesPruned != w.SubtreesPruned {
			t.Errorf("row %d: pipeline %+v drifted from fixture %+v", i, r, w)
		}
		if r.MultiPall < r.SinglePall {
			t.Errorf("%s: placement optimum %.6f below single-core joint optimum %.6f",
				r.Platform, r.MultiPall, r.SinglePall)
		}
		if r.MultiPall < r.UniformPall {
			t.Errorf("%s: placement optimum %.6f below uniform-split baseline %.6f",
				r.Platform, r.MultiPall, r.UniformPall)
		}
	}
	parallel, err := MulticoreCaseStudyWith(6, 0.01, 2, engine.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, rows) {
		t.Error("parallel sweep drifted from the serial multicore rows")
	}
}

// TestMulticoreBBMatchesExhaustive is the acceptance pin of the
// branch-and-bound searchers: on every golden platform variant, the
// branch-and-bound run must land on bit-identical optima — single-core
// joint and placement — while evaluating strictly fewer joint points, and
// its pruning counters must actually fire somewhere.
func TestMulticoreBBMatchesExhaustive(t *testing.T) {
	plain, err := engine.Sweep(engine.Config{Workers: 1}, MulticoreScenarios(6, 0.01, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := engine.Sweep(engine.Config{Workers: 1}, MulticoreScenarios(6, 0.01, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	jointCut, placeCut := false, false
	for i := range plain {
		p, b := plain[i], bb[i]
		pex, bex := p.JointExhaustive, b.JointExhaustive
		if math.Float64bits(pex.BestValue) != math.Float64bits(bex.BestValue) || !bex.Best.Equal(pex.Best) {
			t.Errorf("%s: joint optimum %v (%v) != exhaustive %v (%v)",
				p.Name, bex.Best, bex.BestValue, pex.Best, pex.BestValue)
		}
		if bex.Evaluated >= pex.Evaluated {
			t.Errorf("%s: branch-and-bound evaluated %d of %d joint points",
				p.Name, bex.Evaluated, pex.Evaluated)
		}
		if b.JointPruned > 0 {
			jointCut = true
		}
		pmc, bmc := p.Multicore, b.Multicore
		if math.Float64bits(pmc.BestValue) != math.Float64bits(bmc.BestValue) ||
			!reflect.DeepEqual(pmc.Assignment, bmc.Assignment) ||
			!reflect.DeepEqual(pmc.PerCore, bmc.PerCore) {
			t.Errorf("%s: placement optimum differs between modes", p.Name)
		}
		if bmc.Evaluated > pmc.Evaluated {
			t.Errorf("%s: placement branch-and-bound evaluated %d > %d",
				p.Name, bmc.Evaluated, pmc.Evaluated)
		}
		if bmc.SubtreesPruned > 0 || bmc.AssignmentsPruned > 0 {
			placeCut = true
		}
		if math.Float64bits(p.MulticoreUniform.BestValue) != math.Float64bits(b.MulticoreUniform.BestValue) {
			t.Errorf("%s: uniform baseline differs between modes", p.Name)
		}
	}
	if !jointCut || !placeCut {
		t.Errorf("pruning never fired (joint %v, placement %v)", jointCut, placeCut)
	}
}

// tableVIFixture is the expected outcome of the scenario-diversity case
// study (Table VI) at maxM=6, tolerance 0.01: the values
// ScenarioDiversityCaseStudy must reproduce exactly (cross-checked by
// TestTableVIMatchesPipeline). The zero-jitter rows are the periodic
// engine's optima (the metamorphic normalization), and the exclusive
// hierarchy rows pin bit-identical to the single-level baseline (the
// conservative victim-cache analysis proves no L2 hits).
func tableVIFixture() []TableVIRow {
	best := sched.Schedule{2, 3, 2}
	return []TableVIRow{
		{Platform: "paper-128x1", Jitter: 0, Evaluated: 73, Best: best,
			Pall: 0.4509380507074625, DegradePct: 0},
		{Platform: "paper-128x1", Jitter: 0.05, Evaluated: 73, Best: best,
			Pall: 0.4512759946712536, DegradePct: -0.0749424368293871},
		{Platform: "paper-128x1", Jitter: 0.1, Evaluated: 73, Best: best,
			Pall: 0.45067682222481115, DegradePct: 0.057930015495816424},
		{Platform: "paper-128x1", Jitter: 0.25, Evaluated: 73, Best: best,
			Pall: 0.4488793048854822, DegradePct: 0.4565473724717594},
		{Platform: "l1l2-incl", Jitter: 0, Evaluated: 201, Best: best,
			Pall: 0.5414691431444372, DegradePct: 0},
		{Platform: "l1l2-incl", Jitter: 0.05, Evaluated: 201, Best: best,
			Pall: 0.5416673574008736, DegradePct: -0.036606750162220834},
		{Platform: "l1l2-incl", Jitter: 0.1, Evaluated: 201, Best: best,
			Pall: 0.5411537951199127, DegradePct: 0.05823933432165448},
		{Platform: "l1l2-incl", Jitter: 0.25, Evaluated: 201, Best: best,
			Pall: 0.5396131082770301, DegradePct: 0.3427775877732599},
		{Platform: "l1l2-excl", Jitter: 0, Evaluated: 73, Best: best,
			Pall: 0.4509380507074625, DegradePct: 0},
		{Platform: "l1l2-excl", Jitter: 0.05, Evaluated: 73, Best: best,
			Pall: 0.4512759946712536, DegradePct: -0.0749424368293871},
		{Platform: "l1l2-excl", Jitter: 0.1, Evaluated: 73, Best: best,
			Pall: 0.45067682222481115, DegradePct: 0.057930015495816424},
		{Platform: "l1l2-excl", Jitter: 0.25, Evaluated: 73, Best: best,
			Pall: 0.4488793048854822, DegradePct: 0.4565473724717594},
	}
}

func TestGoldenTableVI(t *testing.T) {
	checkGolden(t, "tablevi.golden", FormatTableVI(tableVIFixture()))
}

// TestTableVIMatchesPipeline re-runs the scenario-diversity sweep and
// checks it reproduces the fixture exactly; that the zero-jitter rows are
// bit-identical to a plain periodic engine run on the same platforms (the
// arrival-axis metamorphic pin at the case-study level); that the
// inclusive hierarchy strictly improves the periodic optimum over the
// single-level baseline; that the exclusive rows equal the baseline rows
// bit-for-bit (degenerate conservative analysis); and that the worst
// jitter level degrades P_all on every platform.
func TestTableVIMatchesPipeline(t *testing.T) {
	rows, err := ScenarioDiversityCaseStudy(6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := tableVIFixture()
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		w := want[i]
		if r.Platform != w.Platform || r.Jitter != w.Jitter || r.Evaluated != w.Evaluated ||
			!r.Best.Equal(w.Best) ||
			math.Float64bits(r.Pall) != math.Float64bits(w.Pall) ||
			math.Float64bits(r.DegradePct) != math.Float64bits(w.DegradePct) {
			t.Errorf("row %d: pipeline %+v drifted from fixture %+v", i, r, w)
		}
	}
	nj := len(TableVIJitters())
	for p, v := range ScenarioPlatforms() {
		res, err := engine.Run(engine.Scenario{
			Name: v.Name, Seed: 1, Apps: apps.CaseStudy(), Platform: v.Platform,
			Objective: engine.ObjectiveTiming, Exhaustive: true, MaxM: 6, Tolerance: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		zero := rows[p*nj]
		if math.Float64bits(res.Exhaustive.BestValue) != math.Float64bits(zero.Pall) ||
			!res.Exhaustive.Best.Equal(zero.Best) {
			t.Errorf("%s: zero-jitter row %v (%v) not bit-identical to periodic run %v (%v)",
				v.Name, zero.Best, zero.Pall, res.Exhaustive.Best, res.Exhaustive.BestValue)
		}
		worst := rows[p*nj+nj-1]
		if worst.Pall >= zero.Pall {
			t.Errorf("%s: %.0f%% jitter did not degrade P_all (%v vs %v)",
				v.Name, 100*worst.Jitter, worst.Pall, zero.Pall)
		}
	}
	if base, incl := rows[0].Pall, rows[nj].Pall; incl <= base {
		t.Errorf("inclusive L2 did not improve the periodic optimum: %v vs %v", incl, base)
	}
	for i := 0; i < nj; i++ {
		b, e := rows[i], rows[2*nj+i]
		if math.Float64bits(b.Pall) != math.Float64bits(e.Pall) || !b.Best.Equal(e.Best) {
			t.Errorf("jitter %v: exclusive row (%v) not bit-identical to baseline (%v)", b.Jitter, e.Pall, b.Pall)
		}
	}
	parallel, err := ScenarioDiversityCaseStudyWith(6, 0.01, engine.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, rows) {
		t.Error("parallel sweep drifted from the serial Table VI rows")
	}
}

// TestGoldenMatchesPipeline cross-checks that the Table I fixture above is
// not stale: the real WCET pipeline must produce exactly the golden
// numbers (the paper's Table I values).
func TestGoldenMatchesPipeline(t *testing.T) {
	rows, err := TableI(apps.CaseStudy(), wcet.PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	want := []TableIRow{
		{App: "C1", ColdUs: 907.55, ReductionUs: 455.40, WarmUs: 452.15},
		{App: "C2", ColdUs: 645.25, ReductionUs: 470.25, WarmUs: 175.00},
		{App: "C3", ColdUs: 749.15, ReductionUs: 514.80, WarmUs: 234.35},
	}
	for i, r := range rows {
		if r.App != want[i].App ||
			math.Abs(r.ColdUs-want[i].ColdUs) > 1e-9 ||
			math.Abs(r.ReductionUs-want[i].ReductionUs) > 1e-9 ||
			math.Abs(r.WarmUs-want[i].WarmUs) > 1e-9 {
			t.Errorf("row %d: pipeline %+v drifted from golden fixture %+v", i, r, want[i])
		}
	}
}
