package exp

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// Golden/snapshot tests for the table renderings. The fixtures are pure
// formatting inputs (no pipeline run), so any rendering drift — spacing,
// headers, rounding — fails the diff. Regenerate with:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTableI(t *testing.T) {
	rows := []TableIRow{
		{App: "C1", ColdUs: 907.55, ReductionUs: 455.40, WarmUs: 452.15, ReusedLines: 92},
		{App: "C2", ColdUs: 645.25, ReductionUs: 470.25, WarmUs: 175.00, ReusedLines: 95},
		{App: "C3", ColdUs: 749.15, ReductionUs: 514.80, WarmUs: 234.35, ReusedLines: 104},
	}
	checkGolden(t, "table1.golden", FormatTableI(rows))
}

func TestGoldenTableII(t *testing.T) {
	rows := []TableIIRow{
		{App: "C1", Weight: 0.4, DeadlineMs: 45, MaxIdleMs: 3.4},
		{App: "C2", Weight: 0.4, DeadlineMs: 20, MaxIdleMs: 3.9},
		{App: "C3", Weight: 0.2, DeadlineMs: 17.5, MaxIdleMs: 3.5},
	}
	checkGolden(t, "table2.golden", FormatTableII(rows))
}

func TestGoldenTableIII(t *testing.T) {
	res := &TableIIIResult{
		Rows: []TableIIIRow{
			{App: "C1", SettleBaseMs: 44.9, SettleOptMs: 29.3, ImprovementPct: 35},
			{App: "C2", SettleBaseMs: 19.8, SettleOptMs: 11.7, ImprovementPct: 41},
			{App: "C3", SettleBaseMs: 17.3, SettleOptMs: 12.4, ImprovementPct: 28},
		},
		Base:     &core.ScheduleEval{Schedule: sched.Schedule{1, 1, 1}},
		Opt:      &core.ScheduleEval{Schedule: sched.Schedule{3, 2, 3}},
		PallBase: 0.0513,
		PallOpt:  0.3592,
	}
	checkGolden(t, "table3.golden", FormatTableIII(res))
}

func TestGoldenSearchStats(t *testing.T) {
	res := &SearchStatsResult{
		Exhaustive: &search.ExhaustiveResult{
			Evaluated: 76,
			Feasible:  71,
			Best:      sched.Schedule{3, 2, 3},
			BestValue: 0.3592,
			FoundBest: true,
		},
		Hybrid: &search.HybridResult{
			Runs: []search.RunStats{
				{Start: sched.Schedule{4, 2, 2}, Best: sched.Schedule{3, 2, 3}, BestValue: 0.3592, FoundBest: true, Evaluations: 9},
				{Start: sched.Schedule{1, 2, 1}, Best: sched.Schedule{3, 2, 3}, BestValue: 0.3592, FoundBest: true, Evaluations: 18},
			},
			Best:             sched.Schedule{3, 2, 3},
			BestValue:        0.3592,
			FoundBest:        true,
			TotalEvaluations: 24,
		},
	}
	res.Hybrid.CacheStats.Hits = 8
	res.Hybrid.CacheStats.Misses = 24
	checkGolden(t, "searchstats.golden", FormatSearchStats(res))
}

// partitionFixture is the expected outcome of the partitioned case study
// (Table IV) at maxM=6, tolerance 0.01: the values PartitionCaseStudy must
// reproduce exactly (cross-checked by TestPartitionGoldenMatchesPipeline).
func partitionFixture() []PartitionRow {
	return []PartitionRow{
		{Platform: "paper-128x1", Ways: 1, Evaluated: 73,
			SharedBest: sched.Schedule{2, 3, 2}, SharedPall: 0.4509380507074625,
			JointBest: sched.SharedPoint(sched.Schedule{2, 3, 2}), JointPall: 0.4509380507074625, GainPct: 0},
		{Platform: "4way-256", Ways: 4, Evaluated: 283,
			SharedBest: sched.Schedule{2, 4, 2}, SharedPall: 0.5516094408532644,
			JointBest: sched.SharedPoint(sched.Schedule{2, 4, 2}), JointPall: 0.5516094408532644, GainPct: 0},
		{Platform: "4way-512", Ways: 4, Evaluated: 1009,
			SharedBest: sched.Schedule{2, 4, 2}, SharedPall: 0.5516094408532644,
			JointBest: sched.JointSchedule{M: sched.Schedule{1, 1, 1}, W: sched.Ways{2, 1, 1}},
			JointPall: 0.8049923895712131, GainPct: 45.935208854656295},
		{Platform: "8way-512", Ways: 8, Evaluated: 5436,
			SharedBest: sched.Schedule{2, 4, 2}, SharedPall: 0.5516094408532644,
			JointBest: sched.JointSchedule{M: sched.Schedule{1, 1, 1}, W: sched.Ways{3, 2, 3}},
			JointPall: 0.8214672182719241, GainPct: 48.92189245369455},
	}
}

func TestGoldenPartitionTable(t *testing.T) {
	checkGolden(t, "partition.golden", FormatPartitionTable(partitionFixture()))
}

// TestPartitionGoldenMatchesPipeline re-runs the joint co-design and checks
// it reproduces the fixture exactly, that the joint optimum dominates the
// schedule-only optimum everywhere (the shared subspace is contained in the
// joint box), that it is *strictly* better on at least one platform
// variant, and that on the single-way paper platform — where no partition
// exists — the joint optimum is bit-identical to the schedule-only one.
func TestPartitionGoldenMatchesPipeline(t *testing.T) {
	rows, err := PartitionCaseStudy(6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := partitionFixture()
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	strictWin := false
	for i, r := range rows {
		w := want[i]
		if r.Platform != w.Platform || r.Ways != w.Ways || r.Evaluated != w.Evaluated ||
			!r.SharedBest.Equal(w.SharedBest) || !r.JointBest.Equal(w.JointBest) ||
			math.Float64bits(r.SharedPall) != math.Float64bits(w.SharedPall) ||
			math.Float64bits(r.JointPall) != math.Float64bits(w.JointPall) {
			t.Errorf("row %d: pipeline %+v drifted from fixture %+v", i, r, w)
		}
		if r.JointPall < r.SharedPall {
			t.Errorf("%s: joint optimum %.6f below schedule-only optimum %.6f", r.Platform, r.JointPall, r.SharedPall)
		}
		if r.JointPall > r.SharedPall {
			strictWin = true
		}
	}
	if !strictWin {
		t.Error("joint search never beat the schedule-only optimum on any platform variant")
	}
	if paper := rows[0]; !paper.JointBest.Shared() ||
		math.Float64bits(paper.JointPall) != math.Float64bits(paper.SharedPall) {
		t.Errorf("paper platform: joint optimum %v (%.6f) must be bit-identical to the shared one (%.6f)",
			paper.JointBest, paper.JointPall, paper.SharedPall)
	}
}

// TestGoldenMatchesPipeline cross-checks that the Table I fixture above is
// not stale: the real WCET pipeline must produce exactly the golden
// numbers (the paper's Table I values).
func TestGoldenMatchesPipeline(t *testing.T) {
	rows, err := TableI(apps.CaseStudy(), wcet.PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	want := []TableIRow{
		{App: "C1", ColdUs: 907.55, ReductionUs: 455.40, WarmUs: 452.15},
		{App: "C2", ColdUs: 645.25, ReductionUs: 470.25, WarmUs: 175.00},
		{App: "C3", ColdUs: 749.15, ReductionUs: 514.80, WarmUs: 234.35},
	}
	for i, r := range rows {
		if r.App != want[i].App ||
			math.Abs(r.ColdUs-want[i].ColdUs) > 1e-9 ||
			math.Abs(r.ReductionUs-want[i].ReductionUs) > 1e-9 ||
			math.Abs(r.WarmUs-want[i].WarmUs) > 1e-9 {
			t.Errorf("row %d: pipeline %+v drifted from golden fixture %+v", i, r, want[i])
		}
	}
}
