package exp

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// Golden/snapshot tests for the table renderings. The fixtures are pure
// formatting inputs (no pipeline run), so any rendering drift — spacing,
// headers, rounding — fails the diff. Regenerate with:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTableI(t *testing.T) {
	rows := []TableIRow{
		{App: "C1", ColdUs: 907.55, ReductionUs: 455.40, WarmUs: 452.15, ReusedLines: 92},
		{App: "C2", ColdUs: 645.25, ReductionUs: 470.25, WarmUs: 175.00, ReusedLines: 95},
		{App: "C3", ColdUs: 749.15, ReductionUs: 514.80, WarmUs: 234.35, ReusedLines: 104},
	}
	checkGolden(t, "table1.golden", FormatTableI(rows))
}

func TestGoldenTableII(t *testing.T) {
	rows := []TableIIRow{
		{App: "C1", Weight: 0.4, DeadlineMs: 45, MaxIdleMs: 3.4},
		{App: "C2", Weight: 0.4, DeadlineMs: 20, MaxIdleMs: 3.9},
		{App: "C3", Weight: 0.2, DeadlineMs: 17.5, MaxIdleMs: 3.5},
	}
	checkGolden(t, "table2.golden", FormatTableII(rows))
}

func TestGoldenTableIII(t *testing.T) {
	res := &TableIIIResult{
		Rows: []TableIIIRow{
			{App: "C1", SettleBaseMs: 44.9, SettleOptMs: 29.3, ImprovementPct: 35},
			{App: "C2", SettleBaseMs: 19.8, SettleOptMs: 11.7, ImprovementPct: 41},
			{App: "C3", SettleBaseMs: 17.3, SettleOptMs: 12.4, ImprovementPct: 28},
		},
		Base:     &core.ScheduleEval{Schedule: sched.Schedule{1, 1, 1}},
		Opt:      &core.ScheduleEval{Schedule: sched.Schedule{3, 2, 3}},
		PallBase: 0.0513,
		PallOpt:  0.3592,
	}
	checkGolden(t, "table3.golden", FormatTableIII(res))
}

func TestGoldenSearchStats(t *testing.T) {
	res := &SearchStatsResult{
		Exhaustive: &search.ExhaustiveResult{
			Evaluated: 76,
			Feasible:  71,
			Best:      sched.Schedule{3, 2, 3},
			BestValue: 0.3592,
			FoundBest: true,
		},
		Hybrid: &search.HybridResult{
			Runs: []search.RunStats{
				{Start: sched.Schedule{4, 2, 2}, Best: sched.Schedule{3, 2, 3}, BestValue: 0.3592, FoundBest: true, Evaluations: 9},
				{Start: sched.Schedule{1, 2, 1}, Best: sched.Schedule{3, 2, 3}, BestValue: 0.3592, FoundBest: true, Evaluations: 18},
			},
			Best:             sched.Schedule{3, 2, 3},
			BestValue:        0.3592,
			FoundBest:        true,
			TotalEvaluations: 24,
		},
	}
	res.Hybrid.CacheStats.Hits = 8
	res.Hybrid.CacheStats.Misses = 24
	checkGolden(t, "searchstats.golden", FormatSearchStats(res))
}

// TestGoldenMatchesPipeline cross-checks that the Table I fixture above is
// not stale: the real WCET pipeline must produce exactly the golden
// numbers (the paper's Table I values).
func TestGoldenMatchesPipeline(t *testing.T) {
	rows, err := TableI(apps.CaseStudy(), wcet.PaperPlatform())
	if err != nil {
		t.Fatal(err)
	}
	want := []TableIRow{
		{App: "C1", ColdUs: 907.55, ReductionUs: 455.40, WarmUs: 452.15},
		{App: "C2", ColdUs: 645.25, ReductionUs: 470.25, WarmUs: 175.00},
		{App: "C3", ColdUs: 749.15, ReductionUs: 514.80, WarmUs: 234.35},
	}
	for i, r := range rows {
		if r.App != want[i].App ||
			math.Abs(r.ColdUs-want[i].ColdUs) > 1e-9 ||
			math.Abs(r.ReductionUs-want[i].ReductionUs) > 1e-9 ||
			math.Abs(r.WarmUs-want[i].WarmUs) > 1e-9 {
			t.Errorf("row %d: pipeline %+v drifted from golden fixture %+v", i, r, want[i])
		}
	}
}
