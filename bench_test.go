// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation plus the design-choice ablations (see README.md
// for the experiment map). Custom metrics report the reproduced quantities
// (settling times, performance indices, evaluation counts) alongside the
// usual ns/op.
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

func benchBudget() ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 8
	opt.Swarm.Iterations = 10
	return opt
}

func benchFramework(b *testing.B) *core.Framework {
	b.Helper()
	fw, err := core.New(apps.CaseStudy(), wcet.PaperPlatform(), benchBudget())
	if err != nil {
		b.Fatal(err)
	}
	return fw
}

// BenchmarkTableI regenerates Table I: the cache-aware WCET analysis of the
// three case-study programs (cold WCET, guaranteed reduction, warm WCET).
func BenchmarkTableI(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	var rows []exp.TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.TableI(study, plat)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ColdUs, "C1-cold-us")
	b.ReportMetric(rows[0].ReductionUs, "C1-reduction-us")
	b.ReportMetric(rows[2].WarmUs, "C3-warm-us")
}

// BenchmarkTableIII regenerates Table III: settling-time comparison between
// the cache-oblivious round robin and a cache-aware schedule.
func BenchmarkTableIII(b *testing.B) {
	var res *exp.TableIIIResult
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		var err error
		res, err = exp.TableIII(fw, exp.PaperRoundRobin, sched.Schedule{2, 2, 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].SettleBaseMs, "C1-rr-ms")
	b.ReportMetric(res.Rows[0].SettleOptMs, "C1-opt-ms")
	b.ReportMetric(res.PallOpt-res.PallBase, "Pall-gain")
}

// BenchmarkFigure6 regenerates the Fig. 6 response trajectories of all
// applications under both compared schedules.
func BenchmarkFigure6(b *testing.B) {
	var series []exp.Figure6Series
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		fw.ReportDtMax = 10e-6
		var err error
		series, err = exp.Figure6(fw, exp.PaperRoundRobin, sched.Schedule{2, 2, 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := exp.WriteFigure6CSV(io.Discard, series); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(series)), "series")
	b.ReportMetric(float64(len(series[0].T)), "points-per-series")
}

// BenchmarkSearchHybrid reproduces the Section V hybrid-search experiment:
// two parallel walks from the paper's random starts.
func BenchmarkSearchHybrid(b *testing.B) {
	var res *search.HybridResult
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		var err error
		res, err = fw.OptimizeHybrid(exp.PaperStarts, search.Options{Tolerance: 0.01, MaxM: 6})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Runs[0].Evaluations), "evals-start1")
	b.ReportMetric(float64(res.Runs[1].Evaluations), "evals-start2")
	b.ReportMetric(res.BestValue, "Pall-best")
}

// BenchmarkSearchExhaustive is the brute-force baseline of the same
// experiment over a reduced box (the reduced box keeps the harness
// runnable in minutes; see README.md for the full-box experiment).
func BenchmarkSearchExhaustive(b *testing.B) {
	var res *search.ExhaustiveResult
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		var err error
		res, err = fw.OptimizeExhaustive(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Evaluated), "schedules")
	b.ReportMetric(float64(res.Feasible), "feasible")
}

// BenchmarkAblationHolistic quantifies the value of designing all burst
// gains together versus per-mode in isolation.
func BenchmarkAblationHolistic(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	timings, _, err := apps.Timings(study, plat)
	if err != nil {
		b.Fatal(err)
	}
	derived, err := sched.Derive(timings, sched.Schedule{2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	var holistic, perMode *ctrl.Design
	for i := 0; i < b.N; i++ {
		holistic, err = ctrl.DesignHolistic(study[0].Plant, derived[0], study[0].Constraints(), benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		perMode, err = ctrl.DesignPerMode(study[0].Plant, derived[0], study[0].Constraints(), benchBudget())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(holistic.SettlingTime*1e3, "holistic-ms")
	b.ReportMetric(perMode.SettlingTime*1e3, "permode-ms")
}

// BenchmarkAblationCacheOblivious evaluates the same burst schedule with
// cache-reuse-aware WCETs versus cold-only WCETs (as a cache-oblivious
// designer would have to assume), isolating the value of the cache model.
func BenchmarkAblationCacheOblivious(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	aware, _, err := apps.Timings(study, plat)
	if err != nil {
		b.Fatal(err)
	}
	oblivious := make([]sched.AppTiming, len(aware))
	copy(oblivious, aware)
	for i := range oblivious {
		oblivious[i].WarmWCET = oblivious[i].ColdWCET
	}
	s := sched.Schedule{2, 2, 2}
	var pAware, pObliv float64
	for i := 0; i < b.N; i++ {
		pAware = evalWithTimings(b, study, aware, s)
		pObliv = evalWithTimings(b, study, oblivious, s)
	}
	b.ReportMetric(pAware, "Pall-cache-aware")
	b.ReportMetric(pObliv, "Pall-cache-oblivious")
}

func evalWithTimings(b *testing.B, study []apps.App, timings []sched.AppTiming, s sched.Schedule) float64 {
	b.Helper()
	derived, err := sched.Derive(timings, s)
	if err != nil {
		b.Fatal(err)
	}
	total := 0.0
	for i, app := range study {
		opt := benchBudget()
		opt.Swarm.Seed = int64(i + 1)
		d, err := ctrl.DesignHolistic(app.Plant, derived[i], app.Constraints(), opt)
		if err != nil {
			b.Fatal(err)
		}
		total += app.Weight * d.Performance
	}
	return total
}

// BenchmarkAblationTolerance compares the hybrid search with and without
// the simulated-annealing-style acceptance tolerance.
func BenchmarkAblationTolerance(b *testing.B) {
	var with, without *search.HybridResult
	for i := 0; i < b.N; i++ {
		fwA := benchFramework(b)
		var err error
		with, err = fwA.OptimizeHybrid([]sched.Schedule{{1, 1, 1}}, search.Options{Tolerance: 0.02, MaxM: 5})
		if err != nil {
			b.Fatal(err)
		}
		fwB := benchFramework(b)
		without, err = fwB.OptimizeHybrid([]sched.Schedule{{1, 1, 1}}, search.Options{Tolerance: 0, MaxM: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.BestValue, "Pall-with-tolerance")
	b.ReportMetric(without.BestValue, "Pall-no-tolerance")
	b.ReportMetric(float64(with.Runs[0].Evaluations), "evals-with-tolerance")
}

// BenchmarkAblationReplacement measures how the replacement policy changes
// the guaranteed cache reuse on a 2-way version of the platform cache.
func BenchmarkAblationReplacement(b *testing.B) {
	study := apps.CaseStudy()
	policies := []cachesim.Policy{cachesim.LRU, cachesim.FIFO, cachesim.PLRU}
	reused := make([]float64, len(policies))
	for i := 0; i < b.N; i++ {
		for pi, pol := range policies {
			plat := wcet.PaperPlatform()
			plat.Cache.Ways = 2
			plat.Cache.Policy = pol
			total := 0
			for _, a := range study {
				res, err := wcet.Analyze(a.Program, plat)
				if err != nil {
					b.Fatal(err)
				}
				total += int(res.ReductionCycles)
			}
			reused[pi] = float64(total)
		}
	}
	b.ReportMetric(reused[0], "LRU-reduction-cycles")
	b.ReportMetric(reused[1], "FIFO-reduction-cycles")
	b.ReportMetric(reused[2], "PLRU-reduction-cycles")
}

// BenchmarkHybridSharedCache measures the sweep engine's memoization win on
// multi-start hybrid search: the same four overlapping starts run once with
// private per-start caches and once through one shared sharded cache. The
// evaluator here runs the holistic design directly with NO other caching
// layer underneath (unlike core.Framework, which memoizes internally), so
// the evals-* metrics count real controller-design executions: the shared
// cache must come in below the private total because no walk re-runs a
// design any earlier walk already paid for.
func BenchmarkHybridSharedCache(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	timings, _, err := apps.Timings(study, plat)
	if err != nil {
		b.Fatal(err)
	}
	uncachedEval := func(executed *int64) search.EvalFunc {
		return func(s sched.Schedule) (search.Outcome, error) {
			atomic.AddInt64(executed, 1)
			derived, err := sched.Derive(timings, s)
			if err != nil {
				return search.Outcome{}, err
			}
			pall := 0.0
			feasible := true
			for i, app := range study {
				opt := benchBudget()
				opt.Swarm.Seed = int64(i + 1)
				d, err := ctrl.DesignHolistic(app.Plant, derived[i], app.Constraints(), opt)
				if err != nil {
					return search.Outcome{}, err
				}
				pall += app.Weight * d.Performance
				if !d.Feasible || d.Performance < 0 {
					feasible = false
				}
			}
			return search.Outcome{Pall: pall, Feasible: feasible}, nil
		}
	}
	starts := []sched.Schedule{{1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {1, 1, 2}}
	opt := search.Options{Tolerance: 0.01, MaxM: 4}
	var execPrivate, execShared int64
	var shared *search.HybridResult
	for i := 0; i < b.N; i++ {
		execPrivate, execShared = 0, 0
		evalP := uncachedEval(&execPrivate)
		if _, err := search.Hybrid(evalP, timings, starts, opt); err != nil {
			b.Fatal(err)
		}
		evalS := uncachedEval(&execShared)
		optShared := opt
		optShared.Cache = search.NewCache(evalS)
		var err error
		shared, err = search.Hybrid(evalS, timings, starts, optShared)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(execPrivate), "designs-private")
	b.ReportMetric(float64(execShared), "designs-shared")
	b.ReportMetric(float64(execPrivate-execShared), "designs-saved")
	b.ReportMetric(100*shared.CacheStats.HitRate(), "hit-rate-pct")
}

// BenchmarkSweepSerial and BenchmarkSweepParallel run the same randomized
// scenario batch (timing objective, exhaustive baseline on) serially and
// over the engine's worker pool; comparing their ns/op gives the wall-clock
// speedup while the results stay bit-identical (engine_test.go asserts it).
func benchSweepScenarios() []engine.Scenario {
	scns := make([]engine.Scenario, 16)
	for i := range scns {
		scns[i] = engine.Scenario{Seed: int64(i + 1), MaxM: 6, Exhaustive: true}
	}
	return scns
}

func BenchmarkSweepSerial(b *testing.B) {
	scns := benchSweepScenarios()
	var results []*engine.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = engine.Sweep(engine.Config{Workers: 1}, scns)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, results)
}

// BenchmarkSweepParallel is the scaling curve of the governor-backed sweep:
// the same scenario batch at 1, 2, 4, and GOMAXPROCS workers (the
// GOMAXPROCS point is skipped when it duplicates one of the fixed counts;
// the fixed counts always run — on a narrow machine the points above
// GOMAXPROCS measure the governor's behavior at saturation, not extra
// parallelism). Results are bit-identical at every point; only wall-clock
// may differ.
func BenchmarkSweepParallel(b *testing.B) {
	scns := benchSweepScenarios()
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var results []*engine.Result
			for i := 0; i < b.N; i++ {
				var err error
				results, err = engine.Sweep(engine.Config{Workers: workers}, scns)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSweep(b, results)
		})
	}
}

func reportSweep(b *testing.B, results []*engine.Result) {
	b.Helper()
	var evals, hits, lookups int64
	for _, r := range results {
		evals += r.CacheStats.Misses
		hits += r.CacheStats.Hits
		lookups += r.CacheStats.Lookups()
	}
	b.ReportMetric(float64(evals), "distinct-evals")
	if lookups > 0 {
		b.ReportMetric(100*float64(hits)/float64(lookups), "hit-rate-pct")
	}
}

// BenchmarkJointCaseStudy regenerates the partitioned case study (Table
// IV): the joint cache-partition + schedule co-design over every partition
// platform variant with the exact timing objective, reporting the
// schedule-only and joint optima of the widest variant plus the gain the
// partitioning axis delivers.
func BenchmarkJointCaseStudy(b *testing.B) {
	var rows []exp.PartitionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.PartitionCaseStudy(6, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	points := 0
	for _, r := range rows {
		points += r.Evaluated
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(points), "joint-points")
	b.ReportMetric(last.SharedPall, "Pall-schedule-only")
	b.ReportMetric(last.JointPall, "Pall-joint")
	b.ReportMetric(last.GainPct, "gain-pct")
}

// BenchmarkMulticoreCoDesign regenerates the multi-core co-design case
// study (Table V): placement x per-core partition x schedule over every
// partition platform variant, once with the retained exhaustive searchers
// and once with branch-and-bound. Both points report identical optima
// (the golden tests pin them bit-exact); comparing their ns/op and
// core-points measures what the admissible bound buys.
func BenchmarkMulticoreCoDesign(b *testing.B) {
	for _, mode := range []struct {
		name string
		bb   bool
	}{{"exhaustive", false}, {"branchbound", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var results []*engine.Result
			for i := 0; i < b.N; i++ {
				var err error
				results, err = engine.Sweep(engine.Config{Workers: 1},
					exp.MulticoreScenarios(6, 0.01, 2, mode.bb))
				if err != nil {
					b.Fatal(err)
				}
			}
			points, joint, pruned := 0, 0, 0
			for _, r := range results {
				points += r.Multicore.Evaluated
				joint += r.JointExhaustive.Evaluated
				pruned += r.JointPruned + r.Multicore.AssignmentsPruned + r.Multicore.SubtreesPruned
			}
			last := results[len(results)-1]
			b.ReportMetric(float64(points), "core-points")
			b.ReportMetric(float64(joint), "joint-points")
			b.ReportMetric(float64(pruned), "pruned")
			b.ReportMetric(last.JointExhaustive.BestValue, "Pall-single-core")
			b.ReportMetric(last.Multicore.BestValue, "Pall-multicore")
		})
	}
}

// BenchmarkJointHybridVsExhaustive measures the joint hybrid ascent's
// efficiency on the widest partition platform: evaluations executed by the
// walks against the full joint box, at equal optima.
func BenchmarkJointHybridVsExhaustive(b *testing.B) {
	variant := exp.PartitionPlatforms()[3] // 8way-512
	scn := engine.Scenario{
		Name: "bench", Seed: 1, Apps: apps.CaseStudy(), Platform: variant.Platform,
		Objective: engine.ObjectiveTiming, Partitioned: true, Exhaustive: true, MaxM: 6,
	}
	var res *engine.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = engine.Run(scn)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.JointHybrid.TotalEvaluations), "hybrid-evals")
	b.ReportMetric(float64(res.JointExhaustive.Evaluated), "exhaustive-evals")
	b.ReportMetric(res.BestValue, "Pall-joint")
	if res.JointExhaustive.FoundBest && res.JointHybrid.FoundBest &&
		res.JointHybrid.BestValue == res.JointExhaustive.BestValue {
		b.ReportMetric(1, "hybrid-found-optimum")
	} else {
		b.ReportMetric(0, "hybrid-found-optimum")
	}
}

// --- micro-benchmarks of the numerical substrates -------------------------

// BenchmarkExpm measures the matrix exponential used by every
// discretization.
func BenchmarkExpm(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := mat.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Expm(a)
	}
}

// BenchmarkEigenvalues measures the QR eigenvalue solver used by every
// stability check.
func BenchmarkEigenvalues(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	a := mat.New(6, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.Eigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSimulation measures raw cache-model throughput.
func BenchmarkCacheSimulation(b *testing.B) {
	c := cachesim.MustNew(cachesim.PaperConfig())
	r := rand.New(rand.NewSource(3))
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = uint32(r.Intn(512)) * 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

// BenchmarkWCETAnalysis measures one full must-analysis + simulation pass.
func BenchmarkWCETAnalysis(b *testing.B) {
	prog := apps.CaseStudy()[0].Program
	plat := wcet.PaperPlatform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.Analyze(prog, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// closedLoopFixture assembles the plant, modes, and stabilizing gains of the
// closed-loop simulation benchmarks.
func closedLoopFixture(b *testing.B) (*ctrl.SimPlan, []ctrl.Mode, ctrl.Gains, ctrl.SimOptions) {
	b.Helper()
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	timings, _, err := apps.Timings(study, plat)
	if err != nil {
		b.Fatal(err)
	}
	derived, err := sched.Derive(timings, sched.Schedule{2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	modes, err := ctrl.ModesFromSchedule(study[0].Plant, derived[0])
	if err != nil {
		b.Fatal(err)
	}
	ks, err := ctrl.PeriodicLQR(modes, 1, 1e-2)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := ctrl.HolisticFeedforward(modes, ks)
	if err != nil {
		b.Fatal(err)
	}
	g := ctrl.Gains{K: ks, F: fs}
	opts := ctrl.SimOptions{Horizon: 0.1, InitialGap: derived[0].Gap}
	plan, err := ctrl.CompileSimPlan(study[0].Plant, modes, opts)
	if err != nil {
		b.Fatal(err)
	}
	return plan, modes, g, opts
}

// BenchmarkClosedLoopSimulation measures one worst-case settling evaluation
// on a precompiled plan through the streaming objective path — the design
// loop's hot path: every PSO particle of every design runs exactly this.
func BenchmarkClosedLoopSimulation(b *testing.B) {
	plan, _, g, _ := closedLoopFixture(b)
	band := 0.9 * lti.SettlingBand
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Metrics(g, 0.2, band, plan.Horizon()/2, band); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedLoopSimulationDense measures the same run with dense
// trajectory recording and a per-call plan compile (the one-shot Simulate
// API used by reporting paths), to quantify what the compiled streaming
// path saves.
func BenchmarkClosedLoopSimulationDense(b *testing.B) {
	_, modes, g, opts := closedLoopFixture(b)
	plant := apps.CaseStudy()[0].Plant
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Simulate(plant, modes, g, 0.2, opts); err != nil {
			b.Fatal(err)
		}
	}
}
