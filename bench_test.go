// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md §4) and the design-choice ablations
// (§5). Custom metrics report the reproduced quantities (settling times,
// performance indices, evaluation counts) alongside the usual ns/op.
package repro

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/exp"
	"repro/internal/mat"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

func benchBudget() ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 8
	opt.Swarm.Iterations = 10
	return opt
}

func benchFramework(b *testing.B) *core.Framework {
	b.Helper()
	fw, err := core.New(apps.CaseStudy(), wcet.PaperPlatform(), benchBudget())
	if err != nil {
		b.Fatal(err)
	}
	return fw
}

// BenchmarkTableI regenerates Table I: the cache-aware WCET analysis of the
// three case-study programs (cold WCET, guaranteed reduction, warm WCET).
func BenchmarkTableI(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	var rows []exp.TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.TableI(study, plat)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ColdUs, "C1-cold-us")
	b.ReportMetric(rows[0].ReductionUs, "C1-reduction-us")
	b.ReportMetric(rows[2].WarmUs, "C3-warm-us")
}

// BenchmarkTableIII regenerates Table III: settling-time comparison between
// the cache-oblivious round robin and a cache-aware schedule.
func BenchmarkTableIII(b *testing.B) {
	var res *exp.TableIIIResult
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		var err error
		res, err = exp.TableIII(fw, exp.PaperRoundRobin, sched.Schedule{2, 2, 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].SettleBaseMs, "C1-rr-ms")
	b.ReportMetric(res.Rows[0].SettleOptMs, "C1-opt-ms")
	b.ReportMetric(res.PallOpt-res.PallBase, "Pall-gain")
}

// BenchmarkFigure6 regenerates the Fig. 6 response trajectories of all
// applications under both compared schedules.
func BenchmarkFigure6(b *testing.B) {
	var series []exp.Figure6Series
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		fw.ReportDtMax = 10e-6
		var err error
		series, err = exp.Figure6(fw, exp.PaperRoundRobin, sched.Schedule{2, 2, 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := exp.WriteFigure6CSV(io.Discard, series); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(series)), "series")
	b.ReportMetric(float64(len(series[0].T)), "points-per-series")
}

// BenchmarkSearchHybrid reproduces the Section V hybrid-search experiment:
// two parallel walks from the paper's random starts.
func BenchmarkSearchHybrid(b *testing.B) {
	var res *search.HybridResult
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		var err error
		res, err = fw.OptimizeHybrid(exp.PaperStarts, search.Options{Tolerance: 0.01, MaxM: 6})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Runs[0].Evaluations), "evals-start1")
	b.ReportMetric(float64(res.Runs[1].Evaluations), "evals-start2")
	b.ReportMetric(res.BestValue, "Pall-best")
}

// BenchmarkSearchExhaustive is the brute-force baseline of the same
// experiment over a reduced box (full box timings are reported in
// EXPERIMENTS.md; the bench keeps the harness runnable in minutes).
func BenchmarkSearchExhaustive(b *testing.B) {
	var res *search.ExhaustiveResult
	for i := 0; i < b.N; i++ {
		fw := benchFramework(b)
		var err error
		res, err = fw.OptimizeExhaustive(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Evaluated), "schedules")
	b.ReportMetric(float64(res.Feasible), "feasible")
}

// BenchmarkAblationHolistic quantifies the value of designing all burst
// gains together versus per-mode in isolation (DESIGN.md §5).
func BenchmarkAblationHolistic(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	timings, _, err := apps.Timings(study, plat)
	if err != nil {
		b.Fatal(err)
	}
	derived, err := sched.Derive(timings, sched.Schedule{2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	var holistic, perMode *ctrl.Design
	for i := 0; i < b.N; i++ {
		holistic, err = ctrl.DesignHolistic(study[0].Plant, derived[0], study[0].Constraints(), benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		perMode, err = ctrl.DesignPerMode(study[0].Plant, derived[0], study[0].Constraints(), benchBudget())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(holistic.SettlingTime*1e3, "holistic-ms")
	b.ReportMetric(perMode.SettlingTime*1e3, "permode-ms")
}

// BenchmarkAblationCacheOblivious evaluates the same burst schedule with
// cache-reuse-aware WCETs versus cold-only WCETs (as a cache-oblivious
// designer would have to assume), isolating the value of the cache model.
func BenchmarkAblationCacheOblivious(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	aware, _, err := apps.Timings(study, plat)
	if err != nil {
		b.Fatal(err)
	}
	oblivious := make([]sched.AppTiming, len(aware))
	copy(oblivious, aware)
	for i := range oblivious {
		oblivious[i].WarmWCET = oblivious[i].ColdWCET
	}
	s := sched.Schedule{2, 2, 2}
	var pAware, pObliv float64
	for i := 0; i < b.N; i++ {
		pAware = evalWithTimings(b, study, aware, s)
		pObliv = evalWithTimings(b, study, oblivious, s)
	}
	b.ReportMetric(pAware, "Pall-cache-aware")
	b.ReportMetric(pObliv, "Pall-cache-oblivious")
}

func evalWithTimings(b *testing.B, study []apps.App, timings []sched.AppTiming, s sched.Schedule) float64 {
	b.Helper()
	derived, err := sched.Derive(timings, s)
	if err != nil {
		b.Fatal(err)
	}
	total := 0.0
	for i, app := range study {
		opt := benchBudget()
		opt.Swarm.Seed = int64(i + 1)
		d, err := ctrl.DesignHolistic(app.Plant, derived[i], app.Constraints(), opt)
		if err != nil {
			b.Fatal(err)
		}
		total += app.Weight * d.Performance
	}
	return total
}

// BenchmarkAblationTolerance compares the hybrid search with and without
// the simulated-annealing-style acceptance tolerance.
func BenchmarkAblationTolerance(b *testing.B) {
	var with, without *search.HybridResult
	for i := 0; i < b.N; i++ {
		fwA := benchFramework(b)
		var err error
		with, err = fwA.OptimizeHybrid([]sched.Schedule{{1, 1, 1}}, search.Options{Tolerance: 0.02, MaxM: 5})
		if err != nil {
			b.Fatal(err)
		}
		fwB := benchFramework(b)
		without, err = fwB.OptimizeHybrid([]sched.Schedule{{1, 1, 1}}, search.Options{Tolerance: 0, MaxM: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.BestValue, "Pall-with-tolerance")
	b.ReportMetric(without.BestValue, "Pall-no-tolerance")
	b.ReportMetric(float64(with.Runs[0].Evaluations), "evals-with-tolerance")
}

// BenchmarkAblationReplacement measures how the replacement policy changes
// the guaranteed cache reuse on a 2-way version of the platform cache.
func BenchmarkAblationReplacement(b *testing.B) {
	study := apps.CaseStudy()
	policies := []cachesim.Policy{cachesim.LRU, cachesim.FIFO, cachesim.PLRU}
	reused := make([]float64, len(policies))
	for i := 0; i < b.N; i++ {
		for pi, pol := range policies {
			plat := wcet.PaperPlatform()
			plat.Cache.Ways = 2
			plat.Cache.Policy = pol
			total := 0
			for _, a := range study {
				res, err := wcet.Analyze(a.Program, plat)
				if err != nil {
					b.Fatal(err)
				}
				total += int(res.ReductionCycles)
			}
			reused[pi] = float64(total)
		}
	}
	b.ReportMetric(reused[0], "LRU-reduction-cycles")
	b.ReportMetric(reused[1], "FIFO-reduction-cycles")
	b.ReportMetric(reused[2], "PLRU-reduction-cycles")
}

// --- micro-benchmarks of the numerical substrates -------------------------

// BenchmarkExpm measures the matrix exponential used by every
// discretization.
func BenchmarkExpm(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := mat.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Expm(a)
	}
}

// BenchmarkEigenvalues measures the QR eigenvalue solver used by every
// stability check.
func BenchmarkEigenvalues(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	a := mat.New(6, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.Eigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSimulation measures raw cache-model throughput.
func BenchmarkCacheSimulation(b *testing.B) {
	c := cachesim.MustNew(cachesim.PaperConfig())
	r := rand.New(rand.NewSource(3))
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = uint32(r.Intn(512)) * 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

// BenchmarkWCETAnalysis measures one full must-analysis + simulation pass.
func BenchmarkWCETAnalysis(b *testing.B) {
	prog := apps.CaseStudy()[0].Program
	plat := wcet.PaperPlatform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.Analyze(prog, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedLoopSimulation measures one worst-case settling
// simulation, the design loop's hot path.
func BenchmarkClosedLoopSimulation(b *testing.B) {
	study := apps.CaseStudy()
	plat := wcet.PaperPlatform()
	timings, _, err := apps.Timings(study, plat)
	if err != nil {
		b.Fatal(err)
	}
	derived, err := sched.Derive(timings, sched.Schedule{2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	modes, err := ctrl.ModesFromSchedule(study[0].Plant, derived[0])
	if err != nil {
		b.Fatal(err)
	}
	ks, err := ctrl.PeriodicLQR(modes, 1, 1e-2)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := ctrl.HolisticFeedforward(modes, ks)
	if err != nil {
		b.Fatal(err)
	}
	g := ctrl.Gains{K: ks, F: fs}
	opts := ctrl.SimOptions{Horizon: 0.1, InitialGap: derived[0].Gap}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Simulate(study[0].Plant, modes, g, 0.2, opts); err != nil {
			b.Fatal(err)
		}
	}
}
