// Interleaved schedules: the paper's Section VI future-work extension.
// Compares a plain burst schedule against interleaved variants such as
// (C1 x2 | C2 x2 | C1 x1 | C3 x2), where an application's burst is split to
// shorten its longest idle gap at the cost of one extra cold start.
//
// Run with: go run ./examples/interleaved
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/wcet"
)

func main() {
	plat := wcet.PaperPlatform()
	study := apps.CaseStudy()
	timings, _, err := apps.Timings(study, plat)
	if err != nil {
		log.Fatal(err)
	}

	plain := sched.Schedule{3, 2, 3}
	variants := []sched.Interleaved{
		sched.FromSchedule(plain),
		{{App: 0, Count: 2}, {App: 1, Count: 2}, {App: 0, Count: 1}, {App: 2, Count: 3}},
		{{App: 0, Count: 2}, {App: 1, Count: 1}, {App: 0, Count: 1}, {App: 1, Count: 1}, {App: 2, Count: 3}},
		{{App: 0, Count: 1}, {App: 2, Count: 2}, {App: 0, Count: 2}, {App: 1, Count: 2}, {App: 2, Count: 1}},
	}

	fmt.Println("interleaved-schedule timing analysis (Section VI extension)")
	fmt.Println()
	for _, iv := range variants {
		der, err := sched.DeriveInterleaved(timings, iv)
		if err != nil {
			log.Fatalf("%v: %v", iv, err)
		}
		ok, err := sched.IdleFeasibleInterleaved(timings, iv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v  idle-feasible=%v\n", iv, ok)
		for i, d := range der {
			fmt.Printf("  %-4s tasks/period=%d  longest h=%.2f ms  longest gap=%.2f ms  hyperperiod=%.2f ms\n",
				timings[i].Name, d.M, d.MaxPeriod()*1e3, d.Gap*1e3, d.HyperPeriod()*1e3)
		}
		fmt.Println()
	}

	fmt.Println("Splitting a burst trades one extra cold-start WCET for a shorter")
	fmt.Println("longest gap; with the Table I timings the cold-start penalty")
	fmt.Println("usually dominates, matching the paper's choice to defer")
	fmt.Println("interleaved schedules to future work.")
}
