// Custom plant: bring your own control application to the co-design flow.
// Defines a new plant (an inverted-pendulum-like unstable second-order
// system), a synthetic control program for it, and optimizes the schedule
// of this custom app alongside two case-study apps.
//
// Run with: go run ./examples/customplant
// (Pass -budget tiny for a fast smoke run, or paper for the full budget;
// quick is the default. -maxm bounds the exhaustive search box.)
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/program"
	"repro/internal/wcet"
)

func main() {
	budgetName := flag.String("budget", "quick", "design budget: tiny | quick | paper")
	maxM := flag.Int("maxm", 6, "burst-length cap of the exhaustive search")
	flag.Parse()

	// A marginally unstable positioning stage: x1 = position, x2 = rate.
	plant := lti.MustSystem(
		mat.NewFromRows([][]float64{
			{0, 1},
			{40, -4}, // unstable pole pair around +/-6.4 rad/s
		}),
		mat.ColVec(0, 150),
		mat.RowVec(1, 0),
	)

	// A control program for the new app: 100 lines with a 30-line loop,
	// placed in a fresh flash region (cache sets 0..99).
	prog := &program.Program{
		Name: "custom-stage",
		Root: program.Seq{
			program.ContiguousLines(0x00050000, 40, 6, 16),
			program.Loop{Body: program.ContiguousLines(0x00050000+40*16, 30, 6, 16), Count: 6},
			program.ContiguousLines(0x00050000+70*16, 30, 6, 16),
		},
	}

	custom := apps.App{
		Name:           "STAGE",
		Plant:          plant,
		Program:        prog,
		Weight:         0.4,
		SettleDeadline: 30e-3,
		MaxIdle:        4e-3,
		Ref:            0.1,
		UMax:           20,
	}

	study := apps.CaseStudy()
	mix := []apps.App{custom, study[1], study[2]}
	// Re-weight so the weights sum to one.
	mix[1].Weight = 0.3
	mix[2].Weight = 0.3

	fw, err := core.New(mix, wcet.PaperPlatform(), exp.Budget(*budgetName))
	if err != nil {
		log.Fatal(err)
	}
	for i, tm := range fw.Timings {
		fmt.Printf("%-6s cold %.2f us, warm %.2f us\n", tm.Name,
			tm.ColdWCET*1e6, tm.WarmWCET*1e6)
		_ = i
	}

	res, err := fw.OptimizeExhaustive(*maxM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevaluated %d schedules (%d feasible)\n", res.Evaluated, res.Feasible)
	fmt.Printf("best schedule: %v with P_all = %.4f\n", res.Best, res.BestValue)

	ev, err := fw.EvaluateSchedule(res.Best)
	if err != nil {
		log.Fatal(err)
	}
	for _, ar := range ev.Apps {
		fmt.Printf("  %-6s settling %.2f ms, peak |u| %.2f\n",
			ar.Name, ar.Design.SettlingTime*1e3, ar.Design.MaxInput)
	}
}
