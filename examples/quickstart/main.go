// Quickstart: analyze one control program's WCET on the cache platform,
// derive the control timing of a schedule, design a holistic controller,
// and report the worst-case settling time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/ctrl"
	"repro/internal/sched"
	"repro/internal/wcet"
)

func main() {
	// 1. Platform and application: the paper's cache (128 x 16 B lines,
	//    1-cycle hit, 100-cycle miss, 20 MHz) and the servo case study.
	plat := wcet.PaperPlatform()
	servo := apps.CaseStudy()[0]

	// 2. Cache-aware WCET analysis: cold WCET and the guaranteed
	//    reduction when tasks run back to back (paper Table I, Eq. 5).
	res, err := wcet.Analyze(servo.Program, plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: cold WCET %.2f us, warm WCET %.2f us (%d cache lines reused)\n",
		servo.Name,
		plat.CyclesToMicros(res.ColdCycles),
		plat.CyclesToMicros(res.WarmCycles),
		res.ReusedLines)

	// 3. Schedule timing: run the servo three times per period alongside
	//    two other applications (schedule (3, 2, 3), Section II-C).
	study := apps.CaseStudy()
	timings, _, err := apps.Timings(study, plat)
	if err != nil {
		log.Fatal(err)
	}
	schedule := sched.Schedule{3, 2, 3}
	derived, err := sched.Derive(timings, schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule %v: servo sampling periods %v us, delays %v us, gap %.2f us\n",
		schedule, scaleUs(derived[0].Periods), scaleUs(derived[0].Delays), derived[0].Gap*1e6)

	// 4. Holistic controller design (Section III): all sampling periods
	//    and sensing-to-actuation delays designed against together.
	design, err := ctrl.DesignHolistic(servo.Plant, derived[0], servo.Constraints(), ctrl.DesignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holistic design: worst-case settling %.2f ms (deadline %.1f ms), peak |u| %.2f, stable rho=%.3f\n",
		design.SettlingTime*1e3, servo.SettleDeadline*1e3, design.MaxInput, design.SpectralRadius)
	fmt.Printf("control performance P = 1 - s/s0 = %.4f\n", design.Performance)
}

func scaleUs(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * 1e6
	}
	return out
}
