// Automotive case study: the paper's full two-stage flow on the three
// automotive applications (servo position, DC-motor speed, wedge brake).
// Regenerates Tables I-III and the search-efficiency experiment.
//
// Run with: go run ./examples/automotive
// (Pass -budget paper for the full experiment budget, or tiny for a fast
// smoke run; quick is the default.)
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

func main() {
	budget := flag.String("budget", "quick", "design budget: tiny | quick | paper")
	flag.Parse()

	opt := exp.Budget(*budget)

	// Table I: cache-aware WCET analysis.
	rows, err := exp.TableI(apps.CaseStudy(), wcet.PaperPlatform())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatTableI(rows))
	fmt.Println()

	// Table II: application parameters.
	fmt.Print(exp.FormatTableII(exp.TableII(apps.CaseStudy())))
	fmt.Println()

	fw, err := exp.DefaultFramework(opt)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 2: hybrid search from the paper's two starting schedules.
	hy, err := fw.OptimizeHybrid(exp.PaperStarts, search.Options{Tolerance: 0.01, MaxM: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range hy.Runs {
		fmt.Printf("hybrid search from %v: best %v (P_all=%.4f) in %d schedule evaluations\n",
			r.Start, r.Best, r.BestValue, r.Evaluations)
	}

	// Table III: round robin vs the discovered cache-aware schedule.
	best := hy.Best
	if !hy.FoundBest {
		best = sched.Schedule{2, 2, 2}
	}
	t3, err := exp.TableIII(fw, exp.PaperRoundRobin, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(exp.FormatTableIII(t3))
}
