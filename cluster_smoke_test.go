// Multi-process smoke test of the distributed sweep fabric: a real served
// coordinator process, real served -worker processes (one killed with
// SIGKILL mid-shard), and a real sweep -remote client, talking over
// loopback HTTP. The in-process cluster tests (internal/fabric) pin the
// protocol; this test pins that the shipped binaries actually wire it up —
// flag parsing, signal handling, stdout contracts and all.
package repro

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildBinary(t *testing.T, ctx context.Context, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "./"+pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./%s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestClusterSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	binDir := t.TempDir()
	servedBin := buildBinary(t, ctx, binDir, "cmd/served")
	sweepBin := buildBinary(t, ctx, binDir, "cmd/sweep")

	// Coordinator on an ephemeral port; its startup line reports the address.
	coord := exec.CommandContext(ctx, servedBin, "-addr", "127.0.0.1:0", "-store", t.TempDir())
	coordOut, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Process.Kill(); coord.Wait() })
	sc := bufio.NewScanner(coordOut)
	if !sc.Scan() {
		t.Fatalf("coordinator printed nothing: %v", sc.Err())
	}
	fields := strings.Fields(sc.Text()) // "served listening on HOST:PORT (...)"
	if len(fields) < 4 {
		t.Fatalf("unexpected coordinator banner %q", sc.Text())
	}
	url := "http://" + fields[3]

	// The driver: submits the golden grid as a 3-shard job and blocks until
	// the cluster finishes, then assembles the report from the coordinator's
	// store. Runs concurrently with the worker churn below.
	var report, progress bytes.Buffer
	sweep := exec.CommandContext(ctx, sweepBin, "-remote", url, "-shards", "3",
		"-n", "6", "-seed", "42", "-exhaustive", "-workers", "2", "-remote-timeout", "2m")
	sweep.Stdout, sweep.Stderr = &report, &progress
	if err := sweep.Start(); err != nil {
		t.Fatal(err)
	}

	// Worker 1 is doomed: throttled so its shard is still in flight when
	// SIGKILL lands, on a short lease so the survivors steal it quickly.
	doomed := exec.CommandContext(ctx, servedBin, "-worker", "-coordinator", url,
		"-name", "doomed", "-lease-ttl", "300ms", "-throttle", "250ms")
	if err := doomed.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1200 * time.Millisecond) // let it lease and start computing
	doomed.Process.Signal(os.Kill)
	doomed.Wait()

	// Workers 2 and 3 drain the job: between them they run the untouched
	// shards, wait out the dead worker's lease, steal it, resume past its
	// checkpoints, and exit once the job is complete.
	var workers []*exec.Cmd
	for _, name := range []string{"w2", "w3"} {
		w := exec.CommandContext(ctx, servedBin, "-worker", "-coordinator", url,
			"-name", name, "-drain", "-lease-ttl", "500ms")
		w.Stdout = os.Stderr // lease log aids debugging on failure
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	for _, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("drain worker failed: %v", err)
		}
	}
	if err := sweep.Wait(); err != nil {
		t.Fatalf("sweep -remote failed: %v\nprogress:\n%s", err, progress.String())
	}

	// The assembled distributed report must be byte-identical to the golden
	// the local cold/warm/kill+resume paths are pinned to.
	want, err := os.ReadFile(filepath.Join("cmd", "sweep", "testdata", "store_sweep.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if report.String() != string(want) {
		t.Errorf("distributed report diverged from golden:\n--- got ---\n%s--- want ---\n%s",
			report.String(), want)
	}
}
