// Smoke tests for the examples/ mains: `go build ./...` already keeps them
// compiling, but only running them catches runtime rot (a renamed API used
// through reflection-free code still compiles if the example drifts
// semantically — log.Fatal exits, panics, infeasible defaults). Each
// example runs through `go run` with its fastest budget and must exit zero
// while printing its headline output.
package repro

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string, args ...string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", append([]string{"run", "./" + dir}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./%s %v failed: %v\n%s", dir, args, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "examples/quickstart")
	for _, want := range []string{"cold WCET", "holistic design", "control performance"} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleAutomotive(t *testing.T) {
	out := runExample(t, "examples/automotive", "-budget", "tiny")
	for _, want := range []string{"TABLE I", "TABLE II", "TABLE III", "hybrid search from"} {
		if !strings.Contains(out, want) {
			t.Errorf("automotive output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleCustomplant(t *testing.T) {
	out := runExample(t, "examples/customplant", "-budget", "tiny", "-maxm", "4")
	for _, want := range []string{"STAGE", "best schedule", "settling"} {
		if !strings.Contains(out, want) {
			t.Errorf("customplant output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleInterleaved(t *testing.T) {
	out := runExample(t, "examples/interleaved")
	for _, want := range []string{"interleaved-schedule timing analysis", "idle-feasible", "hyperperiod"} {
		if !strings.Contains(out, want) {
			t.Errorf("interleaved output missing %q:\n%s", want, out)
		}
	}
}
