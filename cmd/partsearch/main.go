// Command partsearch runs the joint cache-partition + schedule co-design
// on the automotive case study: the schedule burst counts (m1..mn) and the
// per-application dedicated way counts (w1..wn) are searched together
// (Sun et al.'s co-optimization, PAPERS.md), and the joint optimum is
// compared against the paper's schedule-only optimum.
//
// Without flags it prints Table IV — the comparison across the partition
// platform variants with the exact timing objective. With -platform it
// details one variant: the per-way steady-state WCET table, the hybrid
// walks, and the exhaustive baseline. With -objective design the expensive
// full-design pipeline evaluates every joint point (hybrid-only by
// default; add -exhaustive to brute-force the joint box).
//
// Usage:
//
//	partsearch [-platform paper-128x1|4way-256|4way-512|8way-512]
//	           [-objective timing|design] [-budget tiny|quick|paper|deep]
//	           [-maxm 6] [-tol 0.01] [-workers N] [-exhaustive]
//	           [-cores N] [-bb] [-store DIR] [-resume]
//
// With -cores N > 1 the placement axis joins the search: the applications
// are distributed over N cores (each with a private cache of the
// platform's geometry) and the placement, the per-core way splits, and
// the per-core schedules are co-optimized. Table mode then prints
// Table V — the multi-core optimum against the single-core joint optimum
// and the uniform-split baseline; detail mode reports the winning
// placement for one variant. -bb prunes the detail-mode searches with the
// branch-and-bound bound (the optimum is pinned identical either way; the
// table always uses it).
//
// With -store DIR joint-point evaluations and per-platform checkpoint
// records persist to a content-addressed disk store (internal/store,
// shareable with cmd/sweep and cmd/served); -resume additionally loads
// completed platform variants from their checkpoints, so a warm store
// renders Table IV without re-searching the joint box. Table mode is
// bit-identical across cold, warm, and resumed runs; detail mode on a
// resumed checkpoint reports the same optima but notes that per-start
// hybrid walk traces are not persisted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/store"
)

var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("partsearch", flag.ContinueOnError)
	fs.SetOutput(stdout)
	platform := fs.String("platform", "", "detail one platform variant (default: table over all variants)")
	objective := fs.String("objective", "timing", "joint objective: timing | design")
	budget := fs.String("budget", "tiny", "design budget for -objective design: tiny | quick | paper | deep")
	maxM := fs.Int("maxm", 6, "burst-length cap")
	tol := fs.Float64("tol", 0.01, "hybrid acceptance tolerance")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel evaluators for the exhaustive pass (default: all cores)")
	exhaustive := fs.Bool("exhaustive", false, "brute-force the joint box under -objective design (always on for timing)")
	cores := fs.Int("cores", 1, "co-optimize app placement over this many cores (Table V with > 1)")
	bb := fs.Bool("bb", false, "prune detail-mode searches with branch-and-bound")
	storeDir := fs.String("store", "", "persist evaluations and checkpoints to this directory")
	resume := fs.Bool("resume", false, "load platform variants already checkpointed in -store")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	rc := engine.RunConfig{Resume: *resume}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		rc.Store = st
	} else if *resume {
		return fmt.Errorf("-resume requires -store")
	}

	var obj engine.Objective
	switch *objective {
	case "timing":
		obj = engine.ObjectiveTiming
	case "design":
		obj = engine.ObjectiveDesign
	default:
		return fmt.Errorf("unknown objective %q (want timing or design)", *objective)
	}

	if *platform == "" && obj == engine.ObjectiveTiming {
		cfg := engine.Config{Workers: 1, Store: rc.Store, Resume: rc.Resume}
		if *cores > 1 {
			rows, err := exp.MulticoreCaseStudyWith(*maxM, *tol, *cores, cfg)
			if err != nil {
				return err
			}
			_, err = fmt.Fprint(stdout, exp.FormatMulticoreTable(rows))
			return err
		}
		rows, err := exp.PartitionCaseStudyWith(*maxM, *tol, cfg)
		if err != nil {
			return err
		}
		_, err = fmt.Fprint(stdout, exp.FormatPartitionTable(rows))
		return err
	}

	variants := exp.PartitionPlatforms()
	name := *platform
	if name == "" {
		name = variants[2].Name // 4way-512: the partitioning showcase
	}
	var chosen *exp.PartitionPlatform
	for i := range variants {
		if variants[i].Name == name {
			chosen = &variants[i]
			break
		}
	}
	if chosen == nil {
		return fmt.Errorf("unknown platform %q (want one of %s)", name, platformNames(variants))
	}

	scn := engine.Scenario{
		Name:        chosen.Name,
		Seed:        1,
		Apps:        apps.CaseStudy(),
		Platform:    chosen.Platform,
		Objective:   obj,
		Budget:      exp.Budget(*budget),
		Partitioned: true,
		Exhaustive:  obj == engine.ObjectiveTiming || *exhaustive,
		BranchBound: *bb,
		Cores:       *cores,
		MaxM:        *maxM,
		Tolerance:   *tol,
		Workers:     *workers,
	}
	res, err := engine.RunWith(scn, rc)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "platform %s: %d sets x %d ways (%d lines), objective %s\n",
		chosen.Name, chosen.Platform.Cache.Sets(), chosen.Platform.Cache.Ways,
		chosen.Platform.Cache.Lines, obj)
	fmt.Fprintln(stdout, "\nsteady-state WCET by dedicated ways (us):")
	pt := res.PartTimings
	fmt.Fprintf(stdout, "  %-6s %9s %9s", "app", "cold", "shared")
	for w := 1; w <= pt.TotalWays(); w++ {
		fmt.Fprintf(stdout, " %8dw", w)
	}
	fmt.Fprintln(stdout)
	for i, tm := range pt.Shared {
		fmt.Fprintf(stdout, "  %-6s %9.2f %9.2f", tm.Name, tm.ColdWCET*1e6, tm.WarmWCET*1e6)
		for w := 1; w <= pt.TotalWays(); w++ {
			fmt.Fprintf(stdout, " %9.2f", pt.ByWays[w-1][i].WarmWCET*1e6)
		}
		fmt.Fprintln(stdout)
	}

	if res.JointHybrid != nil {
		fmt.Fprintln(stdout, "\njoint hybrid search:")
		for _, r := range res.JointHybrid.Runs {
			fmt.Fprintf(stdout, "  start %v -> best %v (P_all=%.4f) in %d evaluations\n",
				r.Start, r.Best, r.BestValue, r.Evaluations)
		}
	} else {
		fmt.Fprintln(stdout, "\njoint hybrid search: resumed from checkpoint (walk traces are not persisted)")
	}
	fmt.Fprintf(stdout, "  overall best: %v (P_all=%.4f)\n", res.BestJoint, res.BestValue)

	if ex := res.JointExhaustive; ex != nil {
		fmt.Fprintf(stdout, "\nexhaustive joint baseline: %d points evaluated (%d feasible)\n",
			ex.Evaluated, ex.Feasible)
		fmt.Fprintf(stdout, "  schedule-only optimum: %v (P_all=%.4f)\n", ex.BestShared, ex.BestSharedValue)
		fmt.Fprintf(stdout, "  joint optimum:         %v (P_all=%.4f)\n", ex.Best, ex.BestValue)
		if ex.BestSharedValue > 0 {
			fmt.Fprintf(stdout, "  partitioning gain:     %+.1f%%\n",
				100*(ex.BestValue-ex.BestSharedValue)/ex.BestSharedValue)
		}
	}
	if mc := res.Multicore; mc != nil && mc.FoundBest {
		fmt.Fprintf(stdout, "\nmulti-core co-design on %d cores: %d core points (%d placements, %d + %d pruned)\n",
			mc.Cores, mc.Evaluated, mc.Assignments, mc.AssignmentsPruned, mc.SubtreesPruned)
		fmt.Fprintf(stdout, "  placement %v: P_all = %.4f\n", mc.Assignment, mc.BestValue)
		for c, sol := range mc.PerCore {
			fmt.Fprintf(stdout, "  core %d: apps %v  point %v  P = %.4f\n", c, sol.Apps, sol.Point, sol.Value)
		}
		if uni := res.MulticoreUniform; uni != nil && uni.FoundBest {
			fmt.Fprintf(stdout, "  uniform even split: P_all = %.4f (co-design %+.1f%%)\n",
				uni.BestValue, 100*(mc.BestValue-uni.BestValue)/uni.BestValue)
		}
		if ex := res.JointExhaustive; ex != nil && ex.FoundBest {
			fmt.Fprintf(stdout, "  single-core joint optimum: %v (P_all=%.4f, multi-core %+.1f%%)\n",
				ex.Best, ex.BestValue, 100*(mc.BestValue-ex.BestValue)/ex.BestValue)
		}
	}

	st := res.CacheStats
	fmt.Fprintf(stdout, "\n%d distinct evaluations for %d lookups (cache hit rate %.0f%%)\n",
		res.Evaluated, st.Lookups(), 100*st.HitRate())
	return nil
}

func platformNames(variants []exp.PartitionPlatform) string {
	s := ""
	for i, v := range variants {
		if i > 0 {
			s += ", "
		}
		s += v.Name
	}
	return s
}
