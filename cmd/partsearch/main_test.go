package main

import (
	"strings"
	"testing"
)

func TestRunTableMode(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"TABLE IV", "paper-128x1", "4way-512", "8way-512",
		"(2, 4, 2)", "x[2 1 1]", "+45.9%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlatformDetail(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-platform", "4way-512", "-maxm", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"128 sets x 4 ways", "steady-state WCET by dedicated ways",
		"joint hybrid search", "schedule-only optimum", "joint optimum", "partitioning gain",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("detail output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDesignObjective(t *testing.T) {
	// Hybrid-only joint search with the full design pipeline on the paper
	// platform (no partitions there, so the box stays tiny) with the
	// smallest budget: exercises core.EvaluateJoint end to end.
	var sb strings.Builder
	if err := run([]string{"-platform", "paper-128x1", "-objective", "design", "-budget", "tiny", "-maxm", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"objective design", "joint hybrid search", "overall best"} {
		if !strings.Contains(out, want) {
			t.Errorf("design output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "exhaustive joint baseline") {
		t.Errorf("design mode without -exhaustive must not run the baseline:\n%s", out)
	}
}

func TestRunRejectsUnknownPlatformAndObjective(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-platform", "nope"}, &sb); err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Errorf("unknown platform error = %v", err)
	}
	if err := run([]string{"-objective", "nope"}, &sb); err == nil || !strings.Contains(err.Error(), "unknown objective") {
		t.Errorf("unknown objective error = %v", err)
	}
}
