// Command sweep drives the concurrent scenario-sweep engine
// (internal/engine): batches of randomized N-app tasksets, drawn from
// random control programs and evaluated across one or more cache platforms,
// are searched for their best schedule over a bounded worker pool, with
// every schedule evaluation deduplicated through the engine's sharded
// memoization cache.
//
// Usage:
//
//	sweep [-n 20] [-apps 3] [-seed 1] [-workers N] [-maxm 6] [-starts 2]
//	      [-tol 0.01] [-objective timing|design] [-budget tiny|quick|paper|deep]
//	      [-platforms 1] [-exhaustive] [-csv]
//	      [-jitter F] [-arrival-seed S] [-arrival-cycles K]
//	      [-l2-lines N] [-l2-ways W] [-l2-hit C] [-l2-exclusive]
//	      [-store DIR] [-store-sync] [-resume] [-shard K/N]
//	      [-remote URL] [-shards N] [-remote-poll 500ms] [-remote-timeout 10m]
//	      [-cpuprofile sweep.cpu] [-memprofile sweep.mem]
//	sweep -scrub -store DIR [-scrub-repair]
//
// -scrub walks the store like an fsck: every record is classified as ok,
// corrupt, checksum-mismatched, or an orphaned write-temporary, and the
// command exits non-zero if problems are found. -scrub-repair additionally
// quarantines bad records (to DIR/quarantine/) and removes orphaned temps —
// always safe, records are deterministic and recomputable.
//
// With -objective design each schedule evaluation runs the paper's full
// holistic controller design (slow; keep -n small). The default timing
// objective scores schedules from derived timing parameters alone and
// sweeps thousands of scenarios in seconds.
//
// With -store DIR every evaluation outcome and every completed scenario is
// persisted to a content-addressed disk store (internal/store); re-running
// the same sweep against a warm store skips re-executing evaluations, and
// -resume additionally skips whole completed scenarios, so an interrupted
// sweep picks up where it was killed. -shard K/N runs only the K-th of N
// contiguous scenario ranges — independent processes sharing one -store
// directory can split a grid, and a final -resume run assembles the full
// table. All three paths print bit-identical reports.
//
// With -remote URL the sweep runs on a cluster instead: the grid is
// submitted as a job to a served coordinator (internal/fabric), its shards
// (-shards N) are leased to worker processes publishing into the
// coordinator's store, and once the job completes this command assembles
// the results over the coordinator's HTTP store — printing the same report,
// bit for bit, as a local run. -remote owns no local state, so it excludes
// -store/-shard/-resume; progress goes to stderr, the report to stdout.
package main

import (
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/store/httpstore"
)

// errUsage signals a flag-parse failure the FlagSet already reported on
// stdout; main must not print it a second time.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stdout)
	n := fs.Int("n", 20, "number of scenarios")
	nApps := fs.Int("apps", 3, "applications per scenario")
	seed := fs.Int64("seed", 1, "base seed; scenario i uses seed+i")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "scenario-level workers (default: all cores; -workers 1 runs serial)")
	maxM := fs.Int("maxm", 6, "burst-length cap")
	starts := fs.Int("starts", 2, "random hybrid starts per scenario")
	tol := fs.Float64("tol", 0.01, "hybrid acceptance tolerance")
	objective := fs.String("objective", "timing", "schedule objective: timing | design")
	budget := fs.String("budget", "quick", "design budget for -objective design: tiny | quick | paper | deep")
	platforms := fs.Int("platforms", 1, "cache-platform variants to cycle through (1-4)")
	exhaustive := fs.Bool("exhaustive", false, "also run the exhaustive baseline per scenario")
	csv := fs.Bool("csv", false, "emit per-scenario results as CSV")
	jitter := fs.Float64("jitter", 0, "sporadic release jitter fraction in [0, 1); 0 keeps the periodic model")
	arrivalSeed := fs.Int64("arrival-seed", 0, "seed of the sporadic jitter draws")
	arrivalCycles := fs.Int("arrival-cycles", 0, "schedule periods a sporadic timeline simulates (0 = default)")
	l2Lines := fs.Int("l2-lines", 0, "L2 cache lines; 0 keeps the single-level platform")
	l2Ways := fs.Int("l2-ways", 0, "L2 associativity (0 = default 4)")
	l2Hit := fs.Int("l2-hit", 0, "L2 hit cycles (0 = default 10)")
	l2Exclusive := fs.Bool("l2-exclusive", false, "analyze the L2 as an exclusive victim cache")
	storeDir := fs.String("store", "", "persist evaluations and scenario checkpoints to this directory")
	storeSync := fs.Bool("store-sync", false, "fsync every store record before publishing it")
	scrub := fs.Bool("scrub", false, "fsck the -store directory instead of sweeping; non-zero exit when bad records are found")
	scrubRepair := fs.Bool("scrub-repair", false, "with -scrub: quarantine bad records and remove orphaned temporaries")
	resume := fs.Bool("resume", false, "skip scenarios already checkpointed in -store")
	shard := fs.String("shard", "", "run only shard K/N of the scenario list (e.g. 0/4; requires -store to be useful)")
	remote := fs.String("remote", "", "run the sweep on the cluster coordinated by this served URL")
	shards := fs.Int("shards", 0, "shard count for the -remote job (0 = one shard)")
	remotePoll := fs.Duration("remote-poll", 500*time.Millisecond, "status poll interval for -remote")
	remoteTimeout := fs.Duration("remote-timeout", 10*time.Minute, "give up waiting for the -remote job after this long")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if *scrub {
		if *storeDir == "" {
			return fmt.Errorf("sweep: -scrub requires -store")
		}
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		rep, err := st.Scrub(*scrubRepair)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "scrub %s: %s\n", *storeDir, rep)
		if rep.Bad() > 0 && !*scrubRepair {
			// A dirty store and no repair: fail so CI and scripts notice.
			// With repair the problems were handled (quarantined/removed) and
			// a clean exit lets "scrub-repair then rerun" pipelines proceed.
			return fmt.Errorf("sweep: scrub found %d bad record(s)/temp(s) in %s (re-run with -scrub-repair to quarantine)",
				rep.Bad(), *storeDir)
		}
		return nil
	}
	if *scrubRepair {
		return fmt.Errorf("sweep: -scrub-repair requires -scrub")
	}
	if *n < 1 {
		return fmt.Errorf("sweep: -n must be at least 1")
	}
	if max := len(engine.PlatformVariants()); *platforms < 1 || *platforms > max {
		return fmt.Errorf("sweep: -platforms must be in [1, %d]", max)
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProf()

	var obj engine.Objective
	switch *objective {
	case "timing":
		obj = engine.ObjectiveTiming
	case "design":
		obj = engine.ObjectiveDesign
	default:
		return fmt.Errorf("sweep: unknown objective %q", *objective)
	}

	grid := engine.Grid{
		N:          *n,
		Apps:       *nApps,
		Seed:       *seed,
		MaxM:       *maxM,
		Starts:     *starts,
		Tol:        *tol,
		Objective:  obj,
		Budget:     exp.Budget(*budget),
		Platforms:  *platforms,
		Exhaustive: *exhaustive,

		Jitter:        *jitter,
		ArrivalSeed:   *arrivalSeed,
		ArrivalCycles: *arrivalCycles,
		L2Lines:       *l2Lines,
		L2Ways:        *l2Ways,
		L2Hit:         *l2Hit,
		L2Exclusive:   *l2Exclusive,
	}
	scenarios, err := grid.Scenarios()
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}

	if *remote != "" {
		if *storeDir != "" || *resume || *shard != "" {
			// The coordinator owns the store in a remote run; mixing in local
			// persistence flags would silently split results across stores.
			return fmt.Errorf("sweep: -remote excludes -store, -resume, and -shard")
		}
		spec := fabric.JobSpec{
			N: *n, Apps: *nApps, Seed: *seed, MaxM: *maxM, Starts: *starts,
			Tol: *tol, Objective: *objective, Budget: *budget,
			Platforms: *platforms, Exhaustive: *exhaustive, Shards: *shards,
			Jitter: *jitter, ArrivalSeed: *arrivalSeed, ArrivalCycles: *arrivalCycles,
			L2Lines: *l2Lines, L2Ways: *l2Ways, L2Hit: *l2Hit, L2Exclusive: *l2Exclusive,
		}
		results, err := runRemote(*remote, spec, scenarios, *workers, *remotePoll, *remoteTimeout)
		if err != nil {
			return err
		}
		if *csv {
			if err := writeCSV(stdout, results); err != nil {
				return err
			}
			return stopProf()
		}
		writeTable(stdout, results, grid.Platforms)
		return stopProf()
	}

	cfg := engine.Config{Workers: *workers, Resume: *resume}
	if *storeDir != "" {
		st, err := store.OpenWithOptions(*storeDir, store.Options{SyncPuts: *storeSync})
		if err != nil {
			return err
		}
		cfg.Store = st
	} else if *resume {
		return fmt.Errorf("sweep: -resume requires -store")
	}
	if *shard != "" {
		if cfg.Store == nil {
			// Without a store the skipped scenarios' results would be
			// unrecoverable — no process could ever assemble the grid.
			return fmt.Errorf("sweep: -shard requires -store")
		}
		if _, err := fmt.Sscanf(*shard, "%d/%d", &cfg.ShardIndex, &cfg.ShardCount); err != nil {
			return fmt.Errorf("sweep: -shard must look like K/N, got %q", *shard)
		}
		if cfg.ShardCount < 1 || cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount {
			return fmt.Errorf("sweep: -shard %s out of range", *shard)
		}
	}

	results, err := engine.Sweep(cfg, scenarios)
	if err != nil {
		return err
	}

	if *csv {
		if err := writeCSV(stdout, results); err != nil {
			return err
		}
		return stopProf()
	}
	writeTable(stdout, results, grid.Platforms)
	return stopProf()
}

// maxUnreachablePolls bounds how many consecutive status polls may fail
// before -remote gives up on the coordinator. Each failed poll has already
// survived the protocol client's own retry budget, so this is minutes of
// sustained unreachability, not one dropped packet — and distinctly NOT
// the slow-progress case, which only the overall -remote-timeout bounds.
const maxUnreachablePolls = 8

// jitterSeed folds a job ID into a deterministic seed for the poll jitter,
// so concurrent drivers watching different jobs desynchronize.
func jitterSeed(jobID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(jobID))
	seed := int64(h.Sum64())
	if seed == 0 {
		seed = 1
	}
	return seed
}

// runRemote submits the grid as a cluster job, waits for the coordinator's
// workers to finish every shard, then assembles the results through the
// coordinator's HTTP store: a resume-mode sweep that loads each scenario's
// checkpoint record, bit-identical to running the grid locally. Progress
// goes to stderr so stdout stays exactly the local report.
//
// The wait distinguishes two failure shapes: a job that is progressing
// slowly is given the full -remote-timeout, while a coordinator that has
// stopped answering at all fails fast after maxUnreachablePolls
// consecutive poll failures with an error naming the real problem. Polls
// ride a decorrelated-jitter schedule so many drivers watching one
// coordinator spread their load.
func runRemote(base string, spec fabric.JobSpec, scenarios []engine.Scenario, workers int, poll, timeout time.Duration) ([]*engine.Result, error) {
	cl := fabric.NewClient(base, nil)
	jobID, err := cl.Submit(spec)
	if err != nil {
		return nil, fmt.Errorf("sweep: submit to %s: %w", base, err)
	}
	fmt.Fprintf(os.Stderr, "sweep: job %s submitted to %s\n", jobID, base)
	deadline := time.Now().Add(timeout)
	jit := resilience.NewJitter(poll, 3*poll, jitterSeed(jobID))
	lastDone := -1
	unreachable := 0
	for {
		st, err := cl.Status(jobID)
		if err != nil {
			unreachable++
			fmt.Fprintf(os.Stderr, "sweep: job %s: status poll failed (%d consecutive): %v\n", jobID, unreachable, err)
			if unreachable >= maxUnreachablePolls {
				return nil, fmt.Errorf("sweep: job %s: coordinator %s unreachable for %d consecutive polls: %w",
					jobID, base, unreachable, err)
			}
		} else {
			unreachable = 0
			if st.Done != lastDone {
				fmt.Fprintf(os.Stderr, "sweep: job %s: %d/%d shard(s) done\n", jobID, st.Done, len(st.Shards))
				lastDone = st.Done
				jit.Reset() // progress: poll eagerly again
			}
			if st.Complete {
				break
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("sweep: job %s not complete after %v (are workers running against %s?)", jobID, timeout, base)
		}
		time.Sleep(jit.Next())
	}
	return engine.Sweep(engine.Config{
		Workers: workers,
		Store:   httpstore.New(base, nil),
		Resume:  true,
	}, scenarios)
}

func writeCSV(w io.Writer, results []*engine.Result) error {
	if _, err := fmt.Fprintln(w, "scenario,seed,apps,best,pall,found,evaluated,hits,misses,hit_rate"); err != nil {
		return err
	}
	for _, r := range results {
		if r == nil {
			continue // pending: owned by another shard, no record yet
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%q,%.6g,%v,%d,%d,%d,%.4f\n",
			r.Name, r.Seed, r.AppCount, r.Best, r.BestValue, r.FoundBest,
			r.Evaluated, r.CacheStats.Hits, r.CacheStats.Misses, r.CacheStats.HitRate()); err != nil {
			return err
		}
	}
	return nil
}

func writeTable(w io.Writer, results []*engine.Result, platforms int) {
	fmt.Fprintf(w, "%-6s %-6s %-14s %10s %6s %6s %9s\n",
		"name", "seed", "best", "P_all", "evals", "hits", "hit-rate")
	var (
		found      int
		done       int
		totalEvals int64
		totalHits  int64
		totalLooks int64
	)
	for _, r := range results {
		if r == nil {
			continue
		}
		done++
		best := "-"
		if r.FoundBest {
			best = r.Best.String()
			found++
		}
		fmt.Fprintf(w, "%-6s %-6d %-14s %10.4f %6d %6d %8.1f%%\n",
			r.Name, r.Seed, best, r.BestValue, r.Evaluated,
			r.CacheStats.Hits, 100*r.CacheStats.HitRate())
		totalEvals += r.CacheStats.Misses
		totalHits += r.CacheStats.Hits
		totalLooks += r.CacheStats.Lookups()
	}
	if pending := len(results) - done; pending > 0 {
		fmt.Fprintf(w, "... %d scenario(s) pending in other shards (re-run with -resume once they finish)\n", pending)
	}
	fmt.Fprintf(w, "\n%d/%d scenarios found a feasible schedule across %d platform variant(s)\n",
		found, done, platforms)
	rate := 0.0
	if totalLooks > 0 {
		rate = float64(totalHits) / float64(totalLooks)
	}
	fmt.Fprintf(w, "distinct evaluations %d, cache hits %d (aggregate hit rate %.1f%%)\n",
		totalEvals, totalHits, 100*rate)
}
