package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTimingSweep(t *testing.T) {
	var sb strings.Builder
	args := []string{"-n", "4", "-workers", "2", "-seed", "3", "-exhaustive"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"name", "P_all", "hit-rate", "scenarios found a feasible schedule", "aggregate hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "3", "-workers", "3", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "scenario,seed,apps,best,pall,found,evaluated,hits,misses,hit_rate\n") {
		t.Errorf("CSV header missing:\n%.120s", out)
	}
	if strings.Count(out, "\n") != 4 { // header + 3 scenarios
		t.Errorf("CSV line count: %d", strings.Count(out, "\n"))
	}
}

// TestRunDeterministicAcrossWorkerCounts is the CLI-level determinism
// check: identical flags except for -workers must print identical reports.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var serial, parallel strings.Builder
	base := []string{"-n", "6", "-seed", "17", "-exhaustive", "-platforms", "4"}
	if err := run(append([]string{"-workers", "1"}, base...), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-workers", "6"}, base...), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestRunProfiles checks the -cpuprofile/-memprofile plumbing end to end:
// both files must exist and be non-empty after a run.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var sb strings.Builder
	args := []string{"-n", "2", "-workers", "2", "-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := run([]string{"-cpuprofile", filepath.Join(dir, "no", "dir", "cpu")}, &sb); err == nil {
		t.Error("unwritable -cpuprofile path must error")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad objective", []string{"-objective", "vibes"}},
		{"platforms out of range", []string{"-platforms", "99"}},
		{"zero scenarios", []string{"-n", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

// TestRunScenarioAxisFlags drives the arrival and hierarchy flags end to
// end: each axis changes the report, stays deterministic across worker
// counts, and invalid axis values fail flag validation.
func TestRunScenarioAxisFlags(t *testing.T) {
	base := []string{"-n", "4", "-seed", "17", "-exhaustive"}
	runOut := func(extra ...string) string {
		t.Helper()
		var sb strings.Builder
		if err := run(append(append([]string{}, base...), extra...), &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	periodic := runOut("-workers", "2")
	jittered := runOut("-workers", "1", "-jitter", "0.2", "-arrival-seed", "7")
	if jittered == periodic {
		t.Error("-jitter 0.2 left the report unchanged")
	}
	if again := runOut("-workers", "4", "-jitter", "0.2", "-arrival-seed", "7"); again != jittered {
		t.Error("jittered sweep not deterministic across worker counts")
	}
	// Random programs draw from a 64-line address span, which never
	// conflicts in the 128-line L1 — so the L2 overlay cannot prove a
	// single extra hit and the multi-level analysis must land on exactly
	// the single-level report, bit for bit. (Programs that do conflict are
	// pinned by Table VI and the wcet hierarchy tests.)
	l2 := runOut("-workers", "2", "-l2-lines", "512")
	if l2 != periodic {
		t.Error("-l2-lines 512 changed the report of conflict-free programs")
	}
	if again := runOut("-workers", "5", "-l2-lines", "512", "-l2-exclusive"); again != l2 {
		t.Error("hierarchy sweep not deterministic across worker counts and modes")
	}

	for _, bad := range [][]string{
		{"-jitter", "1.5"},
		{"-jitter", "-0.1"},
		{"-l2-lines", "512", "-l2-hit", "200"}, // L2 hit above L1 miss
	} {
		var sb strings.Builder
		if err := run(append(append([]string{}, base...), bad...), &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", bad)
		}
	}
}
