package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/store"
	"repro/internal/store/httpstore"
)

// startCoordinator mounts the cluster endpoints the way served does: the
// lease protocol and the shared store over HTTP.
func startCoordinator(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/shards/", fabric.Handler(fabric.NewManager()))
	mux.Handle("/v1/store/", httpstore.Handler(st))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, st
}

// TestRemoteSweepGolden is the distributed acceptance check: the golden
// grid (-n 6 -seed 42 -exhaustive), split into three shards, executed by
// three worker processes against a coordinator — with one extra worker
// killed mid-shard first — renders exactly testdata/store_sweep.golden,
// the same bytes the local cold/warm/kill+resume paths are pinned to.
func TestRemoteSweepGolden(t *testing.T) {
	srv, _ := startCoordinator(t)
	spec := fabric.JobSpec{N: 6, Seed: 42, Exhaustive: true, Shards: 3}

	// A doomed worker leases the first shard on the shortest TTL the
	// coordinator allows, checkpoints one scenario, and dies without
	// completing; the lease must expire before the real workers start.
	cl := fabric.NewClient(srv.URL, nil)
	jobID, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	lease, ok, err := cl.Acquire(jobID, "victim", fabric.MinTTL)
	if err != nil || !ok {
		t.Fatalf("victim acquire: ok=%v err=%v", ok, err)
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := engine.ShardRange(lease.Shard, lease.Shards, len(scenarios))
	backend := httpstore.New(srv.URL, nil)
	if _, err := engine.RunWith(scenarios[lo], engine.RunConfig{Store: backend, Resume: true}); err != nil {
		t.Fatal(err)
	}
	expiry := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.Status(jobID)
		if err == nil && st.Shards[lease.Shard].State == "expired" {
			break
		}
		if time.Now().After(expiry) {
			t.Fatal("victim lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w := &fabric.Worker{Coordinator: srv.URL, Name: name, TTL: time.Second, Drain: true}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}
	wg.Wait()

	out := sweepOut(t, "-remote", srv.URL, "-shards", "3",
		"-n", "6", "-seed", "42", "-exhaustive", "-workers", "2")
	golden := filepath.Join("testdata", "store_sweep.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("distributed output diverged from %s:\n--- got ---\n%s--- want ---\n%s", golden, out, want)
	}
}

func TestRemoteFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-remote", "http://x", "-store", "dir"},
		{"-remote", "http://x", "-resume"},
		{"-remote", "http://x", "-shard", "0/2"},
	} {
		var sb noopWriter
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted -remote with local persistence flags", args)
		}
	}
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }
