package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fabric"
	"repro/internal/store"
	"repro/internal/store/httpstore"
)

// TestRemoteSweepChaosGolden is the chaos acceptance check: the golden grid
// executed by three workers against a coordinator whose store plane fails
// 30% of requests, goes completely dark (aborted connections) for a burst
// in the middle of the sweep, and whose status endpoint eats the driver's
// entire first poll — and the report on stdout is still byte-identical to
// testdata/store_sweep.golden. Every fault degrades to recomputation or a
// dropped best-effort write, never to wrong bytes: that is the resilience
// layer's core invariant.
func TestRemoteSweepChaosGolden(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Store plane: 30% seeded 500s, with a blackhole burst armed mid-sweep
	// (once the workers have issued enough traffic to be inside their
	// shards). Blackholed requests abort the connection without a response —
	// the coordinator has vanished, not erred — which is what drives worker
	// store breakers open and exercises the degraded compute-without-
	// checkpoints path.
	storeMW := chaos.NewMiddleware(httpstore.Handler(st), chaos.Config{Seed: 20260807, ErrRate: 0.3})
	var storeOps atomic.Int64
	var armed atomic.Bool
	storePlane := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if storeOps.Add(1) == 40 && armed.CompareAndSwap(false, true) {
			storeMW.Blackhole(60)
		}
		storeMW.ServeHTTP(w, r)
	})

	// Control plane: the lease protocol itself stays up, but the driver's
	// per-job status endpoint fails its first four requests — one entire
	// client-side retry budget, i.e. one failed poll — pinning that a poll
	// failure followed by recovery reads as "progressing", not
	// "unreachable".
	var statusFails atomic.Int64
	inner := fabric.Handler(fabric.NewManager())
	controlPlane := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/shards/jobs/") {
			if statusFails.Add(1) <= 4 {
				http.Error(w, "status plane down", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})

	mux := http.NewServeMux()
	mux.Handle("/v1/shards/", controlPlane)
	mux.Handle("/v1/store/", storePlane)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cl := fabric.NewClient(srv.URL, nil)
	if _, err := cl.Submit(fabric.JobSpec{N: 6, Seed: 42, Exhaustive: true, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, name := range []string{"c1", "c2", "c3"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w := &fabric.Worker{Coordinator: srv.URL, Name: name, TTL: time.Second, Drain: true}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}
	wg.Wait()

	// Assembly runs through the same chaotic store: reads that fail (or land
	// in what is left of the blackhole budget) degrade to recomputing that
	// scenario, which is deterministic, so the table cannot drift.
	out := sweepOut(t, "-remote", srv.URL, "-shards", "3",
		"-n", "6", "-seed", "42", "-exhaustive", "-workers", "2")
	golden := filepath.Join("testdata", "store_sweep.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("chaos output diverged from %s:\n--- got ---\n%s--- want ---\n%s", golden, out, want)
	}

	// The faults must actually have fired, or this test proves nothing.
	cs := storeMW.Stats()
	if cs.Errors == 0 || cs.Blackholed == 0 {
		t.Fatalf("chaos stats %+v: expected injected errors and a blackhole burst", cs)
	}
	if n := statusFails.Load(); n < 4 {
		t.Fatalf("status poll saw %d requests; the first driver poll was supposed to fail entirely", n)
	}
}

// TestRemoteUnreachableFailsFast is the regression test for the -remote
// wait loop: a coordinator that accepts the job and then drops off the
// network entirely must surface as an "unreachable" error after a bounded
// number of consecutive failed polls — not burn the full -remote-timeout
// that is reserved for slow-but-progressing jobs.
func TestRemoteUnreachableFailsFast(t *testing.T) {
	// The coordinator accepts the submit, then its status plane goes dark:
	// every poll fails, through the client's full retry budget, forever.
	inner := fabric.Handler(fabric.NewManager())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/shards/jobs/") {
			panic(http.ErrAbortHandler) // connection dropped, no response
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	spec := fabric.JobSpec{N: 6, Seed: 42, Exhaustive: true, Shards: 3}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}

	generous := 10 * time.Minute
	start := time.Now()
	_, err = runRemote(srv.URL, spec, scenarios, 2, 10*time.Millisecond, generous)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("runRemote returned success against a dead coordinator")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("error %q does not name unreachability", err)
	}
	if elapsed >= generous/2 {
		t.Fatalf("fail-fast took %v; the unreachable path must not consume the overall timeout", elapsed)
	}
}
