package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepOut runs the CLI and returns its stdout.
func sweepOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

// TestStoreColdWarmKillResumeGolden is the acceptance check of the
// persistence layer at the CLI level: a sweep with -store renders the
// golden table on a cold store, unchanged on a warm store, and unchanged
// after a simulated kill (only one shard completed) followed by -resume.
func TestStoreColdWarmKillResumeGolden(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-n", "6", "-seed", "42", "-exhaustive", "-workers", "2"}

	cold := sweepOut(t, append([]string{"-store", dir}, base...)...)

	golden := filepath.Join("testdata", "store_sweep.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (regenerate by writing the cold output): %v", golden, err)
	}
	if cold != string(want) {
		t.Errorf("cold-store output diverged from %s:\n--- got ---\n%s--- want ---\n%s", golden, cold, want)
	}

	warm := sweepOut(t, append([]string{"-store", dir}, base...)...)
	if warm != cold {
		t.Errorf("warm-store output differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}

	resumed := sweepOut(t, append([]string{"-store", dir, "-resume"}, base...)...)
	if resumed != cold {
		t.Errorf("resumed output differs from cold:\n--- cold ---\n%s--- resumed ---\n%s", cold, resumed)
	}

	// Kill simulation: a fresh store receives only the first of two
	// shards (the "process" died before the rest ran), then a -resume run
	// finishes the remainder and must render the same table again.
	killDir := t.TempDir()
	partial := sweepOut(t, append([]string{"-store", killDir, "-shard", "0/2"}, base...)...)
	if !strings.Contains(partial, "pending in other shards") {
		t.Errorf("partial shard output missing pending note:\n%s", partial)
	}
	finished := sweepOut(t, append([]string{"-store", killDir, "-resume"}, base...)...)
	if finished != cold {
		t.Errorf("kill+resume output differs from cold:\n--- cold ---\n%s--- resumed ---\n%s", cold, finished)
	}
}

// TestStoreCSVStable pins the CSV rendering across cold and warm stores
// (hits/misses are memory-tier counters, so they must not drift when the
// disk tier starts answering).
func TestStoreCSVStable(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-n", "3", "-seed", "9", "-csv", "-store", dir}
	cold := sweepOut(t, args...)
	warm := sweepOut(t, args...)
	if cold != warm {
		t.Errorf("CSV drifted between cold and warm store:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
}

func TestStoreFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-resume"}, &sb); err == nil {
		t.Error("-resume without -store accepted")
	}
	if err := run([]string{"-shard", "0/2"}, &sb); err == nil {
		t.Error("-shard without -store accepted (results would be unrecoverable)")
	}
	if err := run([]string{"-shard", "nonsense", "-store", t.TempDir()}, &sb); err == nil {
		t.Error("malformed -shard accepted")
	}
	if err := run([]string{"-shard", "3/2", "-store", t.TempDir()}, &sb); err == nil {
		t.Error("out-of-range -shard accepted")
	}
	if err := run([]string{"-platforms", "0"}, &sb); err == nil {
		t.Error("-platforms 0 accepted")
	}
}
