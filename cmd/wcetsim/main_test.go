package main

import (
	"strings"
	"testing"
)

func TestRunDefaultReproducesTableI(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The defaults are the paper platform, so Table I's numbers must appear.
	for _, want := range []string{"907.55", "645.25", "749.15", "TABLE I"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "cache lines guaranteed reused") {
		t.Errorf("output missing reused-lines summary:\n%s", out)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"lru", "LRU"} {
		t.Run(policy, func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-policy", policy, "-ways", "2"}, &sb); err != nil {
				t.Fatalf("policy %s: %v", policy, err)
			}
			if !strings.Contains(sb.String(), "2-way") {
				t.Errorf("platform banner missing associativity:\n%s", sb.String())
			}
		})
	}
	// Direct-mapped caches have no replacement decisions, so any policy
	// analyzes; set-associative non-LRU must be rejected loudly (the must
	// analysis used to silently assume LRU there).
	for _, policy := range []string{"fifo", "plru"} {
		t.Run(policy+"-direct-mapped", func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-policy", policy, "-ways", "1"}, &sb); err != nil {
				t.Fatalf("policy %s direct-mapped: %v", policy, err)
			}
		})
		t.Run(policy+"-set-assoc-rejected", func(t *testing.T) {
			var sb strings.Builder
			err := run([]string{"-policy", policy, "-ways", "2"}, &sb)
			if err == nil || !strings.Contains(err.Error(), "only LRU") {
				t.Fatalf("policy %s 2-way: err = %v, want LRU-only rejection", policy, err)
			}
		})
	}
}

func TestRunBackToBackSimulation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-runs", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Concrete back-to-back simulation") {
		t.Errorf("output missing simulation section:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"unknown policy", []string{"-policy", "random"}},
		{"invalid cache", []string{"-lines", "-1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}
