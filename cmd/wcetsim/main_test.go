package main

import (
	"strings"
	"testing"
)

func TestRunDefaultReproducesTableI(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The defaults are the paper platform, so Table I's numbers must appear.
	for _, want := range []string{"907.55", "645.25", "749.15", "TABLE I"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "cache lines guaranteed reused") {
		t.Errorf("output missing reused-lines summary:\n%s", out)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"lru", "fifo", "plru", "LRU"} {
		t.Run(policy, func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-policy", policy, "-ways", "2"}, &sb); err != nil {
				t.Fatalf("policy %s: %v", policy, err)
			}
			if !strings.Contains(sb.String(), "2-way") {
				t.Errorf("platform banner missing associativity:\n%s", sb.String())
			}
		})
	}
}

func TestRunBackToBackSimulation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-runs", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Concrete back-to-back simulation") {
		t.Errorf("output missing simulation section:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"unknown policy", []string{"-policy", "random"}},
		{"invalid cache", []string{"-lines", "-1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}
