// Command wcetsim runs the cache-aware WCET analysis of the case-study
// control programs (or a synthetic parameterized program) and prints
// Table I of the paper: cold-cache WCET, guaranteed reduction from cache
// reuse, and effective warm WCET.
//
// Usage:
//
//	wcetsim [-lines N] [-ways W] [-policy lru|fifo|plru] [-hit C] [-miss C] [-mhz F]
//	        [-runs K]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/exp"
	"repro/internal/wcet"
)

func main() {
	lines := flag.Int("lines", 128, "cache lines")
	lineSize := flag.Int("linesize", 16, "bytes per line")
	ways := flag.Int("ways", 1, "associativity (1 = direct-mapped)")
	policy := flag.String("policy", "lru", "replacement policy: lru | fifo | plru")
	hit := flag.Int("hit", 1, "hit cycles")
	miss := flag.Int("miss", 100, "miss cycles")
	mhz := flag.Float64("mhz", 20, "processor clock in MHz")
	runs := flag.Int("runs", 0, "additionally simulate K back-to-back runs per app")
	flag.Parse()

	var pol cachesim.Policy
	switch strings.ToLower(*policy) {
	case "lru":
		pol = cachesim.LRU
	case "fifo":
		pol = cachesim.FIFO
	case "plru":
		pol = cachesim.PLRU
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	plat := wcet.Platform{
		ClockHz: *mhz * 1e6,
		Cache: cachesim.Config{
			Lines: *lines, LineSize: *lineSize, Ways: *ways, Policy: pol,
			HitCycles: *hit, MissCycles: *miss,
		},
	}
	study := apps.CaseStudy()
	rows, err := exp.TableI(study, plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %d x %dB lines, %d-way %s, hit %dc / miss %dc, %.0f MHz\n\n",
		*lines, *lineSize, *ways, pol, *hit, *miss, *mhz)
	fmt.Print(exp.FormatTableI(rows))
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%s: %d cache lines guaranteed reused across back-to-back runs\n", r.App, r.ReusedLines)
	}

	if *runs > 1 {
		fmt.Println("\nConcrete back-to-back simulation (cycles per run):")
		for _, a := range study {
			rs := wcet.SimulateRuns(a.Program, plat.Cache, *runs)
			fmt.Printf("  %-4s %v\n", a.Name, rs)
		}
	}
}
