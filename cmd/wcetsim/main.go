// Command wcetsim runs the cache-aware WCET analysis of the case-study
// control programs (or a synthetic parameterized program) and prints
// Table I of the paper: cold-cache WCET, guaranteed reduction from cache
// reuse, and effective warm WCET.
//
// Usage:
//
//	wcetsim [-lines N] [-linesize B] [-ways W] [-policy lru|fifo|plru]
//	        [-hit C] [-miss C] [-mhz F] [-runs K]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/exp"
	"repro/internal/wcet"
)

// errUsage signals a flag-parse failure the FlagSet already reported on
// stdout; main must not print it a second time.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wcetsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	lines := fs.Int("lines", 128, "cache lines")
	lineSize := fs.Int("linesize", 16, "bytes per line")
	ways := fs.Int("ways", 1, "associativity (1 = direct-mapped)")
	policy := fs.String("policy", "lru", "replacement policy: lru | fifo | plru")
	hit := fs.Int("hit", 1, "hit cycles")
	miss := fs.Int("miss", 100, "miss cycles")
	mhz := fs.Float64("mhz", 20, "processor clock in MHz")
	runs := fs.Int("runs", 0, "additionally simulate K back-to-back runs per app")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	var pol cachesim.Policy
	switch strings.ToLower(*policy) {
	case "lru":
		pol = cachesim.LRU
	case "fifo":
		pol = cachesim.FIFO
	case "plru":
		pol = cachesim.PLRU
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	plat := wcet.Platform{
		ClockHz: *mhz * 1e6,
		Cache: cachesim.Config{
			Lines: *lines, LineSize: *lineSize, Ways: *ways, Policy: pol,
			HitCycles: *hit, MissCycles: *miss,
		},
	}
	study := apps.CaseStudy()
	rows, err := exp.TableI(study, plat)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "platform: %d x %dB lines, %d-way %s, hit %dc / miss %dc, %.0f MHz\n\n",
		*lines, *lineSize, *ways, pol, *hit, *miss, *mhz)
	fmt.Fprint(stdout, exp.FormatTableI(rows))
	fmt.Fprintln(stdout)
	for _, r := range rows {
		fmt.Fprintf(stdout, "%s: %d cache lines guaranteed reused across back-to-back runs\n", r.App, r.ReusedLines)
	}

	if *runs > 1 {
		fmt.Fprintln(stdout, "\nConcrete back-to-back simulation (cycles per run):")
		for _, a := range study {
			rs := wcet.SimulateRuns(a.Program, plat.Cache, *runs)
			fmt.Fprintf(stdout, "  %-4s %v\n", a.Name, rs)
		}
	}
	return nil
}
