// Command served exposes the cache-aware co-design pipeline as an
// HTTP/JSON service backed by the persistent result store: schedule
// evaluations, randomized sweeps, and the paper's tables become runtime
// queries instead of batch recomputation (the feedback-scheduling framing
// of Xia et al., see PAPERS.md).
//
// Endpoints:
//
//	GET  /healthz                     liveness
//	GET  /readyz                      readiness (store write probe)
//	GET  /statsz                      per-tier cache hit rates, store traffic, resilience gauges
//	GET  /v1/design?schedule=3,2,3[&schedule=1,1,1][&ways=2,1,1][&budget=tiny]
//	POST /v1/design                   {"schedules": ["3,2,3"], "ways": "2,1,1", "budget": "tiny"}
//	GET  /v1/sweep?n=10[&apps=3][&seed=1][&objective=timing][&exhaustive=1]
//	                    [&jitter=0.2&arrival_seed=7&arrival_cycles=64]      sporadic releases
//	                    [&l2_lines=512&l2_ways=4&l2_hit=10&l2_exclusive=1]  L1+L2 hierarchy
//	POST /v1/sweep                    {"n": 10, "apps": 3, "seed": 1, ...}
//	GET  /v1/table/{I|II|III|IV}      rendered paper tables (III/IV accept budget/maxm/tol)
//	GET/PUT /v1/store/{key}           the persistent store over HTTP (requires -store)
//	POST /v1/shards/...               distributed-sweep lease protocol (requires -store)
//	GET/POST /v1/admin/scrub[?repair=1]  store fsck: classify (and quarantine) bad records
//
// Usage:
//
//	served [-addr :8080] [-store DIR] [-budget tiny]              # coordinator
//	       [-journal DIR] [-journal-fsync always] [-store-sync]   # durability
//	       [-max-queue N] [-request-timeout 30s]                  # degradation bounds
//	served -worker -coordinator URL [-name ID] [-lease-ttl 10s]   # cluster worker
//
// With -journal the coordinator write-ahead logs job submissions and shard
// completions; a restarted coordinator replays the journal and carries on —
// workers re-acquire in-flight leases through TTL expiry, and no shard the
// journal recorded as done is ever re-executed. /readyz (and the shard
// protocol) answer 503 while replay is in progress.
//
// Degradation: with -max-queue set, compute requests arriving while the
// executor queue is deeper than N are shed with 429 + Retry-After instead
// of queueing unboundedly; with -request-timeout set, a compute request
// that outlives the deadline answers 503 + Retry-After while the
// computation finishes into the caches — the retried request lands warm.
// /readyz proves the store round-trips a write (load balancers gate on
// it); /healthz stays pure liveness. Both shed and timeout counts are
// exported on /statsz.
//
// With -store the service doubles as a sweep coordinator: it serves the
// store over /v1/store/ and leases sweep shards over /v1/shards/ to worker
// processes (served -worker), which publish every result back into the
// coordinator's store; cmd/sweep -remote submits jobs and assembles the
// output (see internal/fabric).
//
// Requests batch naturally: /v1/design accepts many schedules per call,
// evaluated concurrently. Concurrent identical requests coalesce through
// the same singleflight evaluation caches the sweep engine uses
// (internal/engine/evalcache), and with -store every design outcome,
// sweep evaluation, scenario checkpoint, and rendered table persists
// across restarts — a warm service answers repeat queries from disk
// without recomputing (visible as disk-tier hits in /statsz). Shutdown is
// graceful: SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/evalcache"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/store/httpstore"
	"repro/internal/wcet"
)

var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", ":8080", "listen address")
	storeDir := fs.String("store", "", "persist results to this directory (empty: memory only)")
	budget := fs.String("budget", "tiny", "default design budget: tiny | quick | paper | deep")
	worker := fs.Bool("worker", false, "run as a cluster worker instead of serving")
	coordinator := fs.String("coordinator", "", "coordinator base URL (worker mode)")
	name := fs.String("name", "", "worker identity for shard leases (default host:pid)")
	leaseTTL := fs.Duration("lease-ttl", 0, "shard lease TTL requested from the coordinator (0 = coordinator default)")
	poll := fs.Duration("poll", 0, "worker idle/retry poll interval (0 = TTL/2)")
	drain := fs.Bool("drain", false, "worker exits once the coordinator has no work left")
	throttle := fs.Duration("throttle", 0, "worker pause between scenarios (rate-limits a shared box)")
	maxQueue := fs.Int("max-queue", 0, "shed compute requests (429) when the executor queue exceeds this depth (0 = never shed)")
	requestTimeout := fs.Duration("request-timeout", 0, "answer 503 when a compute request exceeds this deadline (0 = no deadline)")
	journalDir := fs.String("journal", "", "journal coordinator state to this directory (requires -store); jobs and done shards survive restarts")
	journalFsync := fs.String("journal-fsync", "always", "journal fsync policy: always | none")
	journalCompact := fs.Int("journal-compact", 1024, "compact the journal after this many appends (0 = never)")
	storeSync := fs.Bool("store-sync", false, "fsync every store record before publishing it (records survive power loss)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if !validBudget(*budget) {
		return fmt.Errorf("served: unknown budget %q", *budget)
	}
	// Crash-schedule injection (CHAOS_CRASH): lets the recovery test matrix
	// stage deterministic process deaths in both coordinator and workers.
	if _, err := chaos.ArmFromEnv(); err != nil {
		return err
	}
	if *worker {
		if *coordinator == "" {
			return fmt.Errorf("served: -worker requires -coordinator URL")
		}
		if *name == "" {
			host, _ := os.Hostname()
			*name = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		w := &fabric.Worker{
			Coordinator: *coordinator, Name: *name,
			TTL: *leaseTTL, Poll: *poll, Drain: *drain, Throttle: *throttle,
			Log: stdout,
		}
		stats, err := w.Run(ctx)
		fmt.Fprintf(stdout, "worker %s: %d shard(s), %d scenario(s)\n", *name, stats.Shards, stats.Scenarios)
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		return nil
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.OpenWithOptions(*storeDir, store.Options{SyncPuts: *storeSync}); err != nil {
			return err
		}
	}
	srv := newServer(st, *budget)
	srv.maxQueue = *maxQueue
	srv.reqTimeout = *requestTimeout
	if *journalDir != "" {
		if st == nil {
			return fmt.Errorf("served: -journal requires -store (a journal without durable records recovers bookkeeping for results that no longer exist)")
		}
		var sync fabric.SyncPolicy
		switch *journalFsync {
		case "always":
			sync = fabric.SyncAlways
		case "none":
			sync = fabric.SyncNever
		default:
			return fmt.Errorf("served: unknown -journal-fsync %q (want always | none)", *journalFsync)
		}
		j, err := fabric.OpenJournal(*journalDir, fabric.JournalOptions{Sync: sync, CompactEvery: int64(*journalCompact)})
		if err != nil {
			return err
		}
		defer j.Close()
		srv.journal = j
		srv.replaying.Store(true)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.mux}
	storeDesc := "memory only"
	if st != nil {
		storeDesc = "store " + st.Root()
	}
	fmt.Fprintf(stdout, "served listening on %s (%s, default budget %s)\n", ln.Addr(), storeDesc, *budget)
	if srv.journal != nil {
		// Replay concurrently with serving: /healthz answers immediately,
		// while /readyz and the shard protocol hold 503 until the lease table
		// is rebuilt — retrying workers and drivers ride it out.
		go func() {
			stats, err := srv.shards.Recover(srv.journal)
			if err != nil {
				fmt.Fprintf(stdout, "served: journal recovery failed (staying not-ready): %v\n", err)
				return
			}
			srv.recovered.Store(&stats)
			srv.replaying.Store(false)
			fmt.Fprintf(stdout, "served: journal %s recovered %d job(s), %d done shard(s) from %d record(s)\n",
				srv.journal.Dir(), stats.Jobs, stats.DoneShards, stats.Records)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "served: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "served: shut down cleanly")
	return nil
}

func validBudget(name string) bool {
	switch name {
	case "tiny", "quick", "paper", "deep":
		return true
	}
	return false
}

// validTol accepts convergence tolerances the searches can actually use: a
// NaN/Inf tol poisons every comparison it reaches, and a non-positive one
// never converges.
func validTol(tol float64) bool {
	return tol > 0 && !math.IsInf(tol, 1)
}

// Store-key schemas of the service's own record kinds. Bump on incompatible
// payload changes; the keys then no longer match and old records age out as
// misses.
const (
	designNamespace = "served/design/v1/"
	tableNamespace  = "served/table/v1/"
)

// strKey adapts a plain string to the evalcache key contract.
type strKey string

func (k strKey) Key() string { return string(k) }

// server owns the shared caches: frameworks per budget (each framework
// memoizes full schedule evaluations), design summaries and rendered
// tables both two-tiered onto the store. All three coalesce concurrent
// identical requests.
type server struct {
	st            *store.Store // may be nil
	defaultBudget string
	start         time.Time
	mux           *http.ServeMux
	shards        *fabric.Manager // nil when no store: workers need /v1/store

	// Durability wiring (nil/false without -journal). While replaying, the
	// shard protocol and /readyz answer 503: granting leases from a
	// half-rebuilt table could hand out already-done shards.
	journal   *fabric.Journal
	replaying atomic.Bool
	recovered atomic.Pointer[fabric.RecoverStats]

	// Degradation bounds (zero = disabled), read per request so main and
	// tests set them after construction.
	maxQueue   int           // shed compute requests beyond this executor queue depth
	reqTimeout time.Duration // compute request deadline
	// queueDepth reports the executor queue depth the shed check reads
	// (injectable: load tests pin shedding without filling a real executor).
	queueDepth func() int64

	shed     atomic.Int64 // compute requests answered 429 by the shed check
	timeouts atomic.Int64 // compute requests answered 503 by the deadline
	probes   atomic.Int64 // /readyz write-probe sequence

	frameworks *evalcache.Cache[strKey, *core.Framework]
	designs    *evalcache.Cache[strKey, *designRecord]
	tables     *evalcache.Cache[strKey, string]
}

// backend returns the store as an evalcache.Backend, or a true nil
// interface when no store is configured (a typed-nil *store.Store inside a
// non-nil interface would defeat the cache's nil check).
func (s *server) backend() evalcache.Backend {
	if s.st == nil {
		return nil
	}
	return s.st
}

func newServer(st *store.Store, defaultBudget string) *server {
	s := &server{st: st, defaultBudget: defaultBudget, start: time.Now(), mux: http.NewServeMux()}
	s.queueDepth = func() int64 { return int64(parallel.Default().Stats().QueueDepth) }
	s.frameworks = evalcache.NewCache(0, func(k strKey) (*core.Framework, error) {
		return exp.DefaultFramework(exp.Budget(string(k)))
	})
	s.designs = evalcache.NewTiered(0, s.evalDesign, s.backend(), designNamespace, designCodec())
	s.tables = evalcache.NewTiered(0, s.renderTable, s.backend(), tableNamespace, evalcache.Codec[string]{
		Encode: func(t string) ([]byte, error) { return json.Marshal(t) },
		Decode: func(data []byte) (string, error) {
			var t string
			err := json.Unmarshal(data, &t)
			return t, err
		},
	})

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	// Compute endpoints run behind the degradation envelope (load shedding
	// and request deadlines); observability and fabric endpoints answer in
	// microseconds and stay outside it — a wedged executor must not take
	// down the telemetry that explains why.
	s.mux.HandleFunc("/v1/design", s.compute(s.handleDesign))
	s.mux.HandleFunc("/v1/sweep", s.compute(s.handleSweep))
	s.mux.HandleFunc("GET /v1/table/{table}", s.compute(s.handleTable))
	// The distributed sweep fabric: the raw store over HTTP (workers'
	// persistent tier, and how cmd/sweep -remote assembles results) and the
	// shard-lease protocol. Both need a durable store to mean anything —
	// without one the endpoints answer but refuse: a "cluster" whose records
	// die with the coordinator process would silently recompute forever.
	if st != nil {
		s.shards = fabric.NewManager()
		s.mux.Handle("/v1/store/", httpstore.Handler(st))
		shardsH := fabric.Handler(s.shards)
		s.mux.HandleFunc("/v1/shards/", func(w http.ResponseWriter, r *http.Request) {
			if s.replaying.Load() {
				// 503 is transient to every fabric client; workers and
				// drivers back off and retry until replay finishes.
				writeErr(w, http.StatusServiceUnavailable, "journal replay in progress")
				return
			}
			shardsH.ServeHTTP(w, r)
		})
		s.mux.HandleFunc("/v1/admin/scrub", s.handleScrub)
	} else {
		s.mux.Handle("/v1/store/", httpstore.Handler(nil))
		s.mux.HandleFunc("/v1/shards/", func(w http.ResponseWriter, r *http.Request) {
			writeErr(w, http.StatusServiceUnavailable, "no store configured (run served with -store)")
		})
		s.mux.HandleFunc("/v1/admin/scrub", func(w http.ResponseWriter, r *http.Request) {
			writeErr(w, http.StatusServiceUnavailable, "no store configured (run served with -store)")
		})
	}
	return s
}

// handleScrub is the admin fsck: GET classifies every record (read-only),
// POST with repair=1 additionally quarantines bad records and removes
// orphaned temps. Deliberately outside the compute envelope — it is an
// operator action, not user traffic — but O(records): point dashboards at
// /statsz, not here.
func (s *server) handleScrub(w http.ResponseWriter, r *http.Request) {
	repair := false
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		repair = r.URL.Query().Get("repair") == "1"
	default:
		writeErr(w, http.StatusMethodNotAllowed, "scrub wants GET (report) or POST [?repair=1]")
		return
	}
	rep, err := s.st.Scrub(repair)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "scrub: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"report":  rep,
		"bad":     rep.Bad(),
		"repair":  repair,
		"summary": rep.String(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// readyzProbeKey is the single store record /readyz rewrites on every
// probe. One fixed key: the probe must prove writes land without growing
// the store by one record per health check.
const readyzProbeKey = "served/readyz/v1/probe"

// handleReadyz is readiness, distinct from /healthz liveness: a
// coordinator whose store stopped accepting writes (disk full, permissions
// flipped, volume detached) is alive but must stop receiving cluster
// traffic. The probe round-trips a fresh payload through the store —
// sequence-numbered, so a stale read from a previous probe cannot pass.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		// Memory-only mode has no store to fail; the service is as ready as
		// it will ever be.
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "store": false})
		return
	}
	if s.replaying.Load() {
		// The lease table is still being rebuilt from the journal; routing
		// cluster traffic here would grant leases for shards whose done
		// records have not replayed yet.
		writeErr(w, http.StatusServiceUnavailable, "journal replay in progress")
		return
	}
	seq := s.probes.Add(1)
	// Already-compact JSON: the store's envelope re-marshals payloads, so
	// anything non-compact would come back byte-different and fail the
	// comparison spuriously.
	payload := fmt.Sprintf(`{"probe":%d}`, seq)
	s.st.Put(readyzProbeKey, []byte(payload))
	got, ok := s.st.Get(readyzProbeKey)
	if !ok || string(got) != payload {
		writeErr(w, http.StatusServiceUnavailable, "store write probe %d failed to round-trip", seq)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "store": true, "probe": seq})
}

// bufferedResponse captures a compute handler's full response so the
// deadline race in compute has a winner: either the buffered response is
// flushed whole, or the timeout answer goes out and the buffer is dropped
// — never interleaved bytes from both.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flush(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.header {
		h[k] = vs
	}
	if b.code == 0 {
		b.code = http.StatusOK
	}
	w.WriteHeader(b.code)
	w.Write(b.body.Bytes())
}

// compute wraps a compute handler with the degradation envelope:
//
//   - Load shedding: with -max-queue set and the executor queue already
//     deeper than the bound, answer 429 + Retry-After immediately — the
//     request would only deepen the queue and stall everything behind it.
//   - Deadline: with -request-timeout set, a request that outlives it
//     answers 503 + Retry-After. The computation itself is not abandoned —
//     the engine is not preemptible mid-evaluation, and its result lands in
//     the caches either way — so the client's retry finds a warm answer.
func (s *server) compute(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.maxQueue > 0 {
			if depth := s.queueDepth(); depth > int64(s.maxQueue) {
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests,
					"overloaded: executor queue depth %d exceeds -max-queue %d", depth, s.maxQueue)
				return
			}
		}
		if s.reqTimeout <= 0 {
			h(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		buf := &bufferedResponse{header: make(http.Header)}
		done := make(chan struct{})
		go func() {
			defer close(done)
			h(buf, r.WithContext(ctx))
		}()
		select {
		case <-done:
			buf.flush(w)
		case <-ctx.Done():
			// The handler goroutine keeps running into the buffer (dropped on
			// completion); its side effects — cache fills, checkpoints — are
			// exactly what makes the retry cheap.
			s.timeouts.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable,
				"request exceeded -request-timeout %s; the computation continues and a retry will answer from cache", s.reqTimeout)
		}
	}
}

// cacheStats renders one evalcache tier triple for /statsz.
func cacheStats(st evalcache.Stats) map[string]any {
	return map[string]any{
		"memory_hits": st.Hits,
		"disk_hits":   st.DiskHits,
		"executions":  st.Executions(),
		"lookups":     st.Lookups(),
		"hit_rate":    st.HitRate(),
	}
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	ex := parallel.Default().Stats()
	resp := map[string]any{
		"uptime_s": time.Since(s.start).Seconds(),
		"designs":  cacheStats(s.designs.Stats()),
		"tables":   cacheStats(s.tables.Stats()),
		// The process-wide concurrency governor every compute layer draws
		// from (internal/parallel): live gauges plus lifetime counters.
		"executor": map[string]any{
			"capacity":       ex.Capacity,
			"in_flight":      ex.InFlight,
			"queue_depth":    ex.QueueDepth,
			"peak_in_flight": ex.PeakInFlight,
			"acquired":       ex.Acquired,
			"waited":         ex.Waited,
			"denied":         ex.Denied,
		},
		// The degradation envelope around the compute endpoints: how often
		// load shedding and request deadlines actually fired, and the bounds
		// they enforce (0 = disabled).
		"resilience": map[string]any{
			"shed":               s.shed.Load(),
			"timeouts":           s.timeouts.Load(),
			"max_queue":          s.maxQueue,
			"request_timeout_ms": s.reqTimeout.Milliseconds(),
			"ready_probes":       s.probes.Load(),
		},
	}
	// A store backend reached over the wire (future remote tiers) carries
	// its own retry/breaker counters; surface them when present.
	if rc, ok := s.backend().(interface {
		Resilience() httpstore.ResilienceStats
	}); ok {
		resp["store_client"] = rc.Resilience()
	}
	if s.st != nil {
		resp["store"] = s.st.Stats()
		// ApproxLen, not Len: the stats endpoint is polled (workers,
		// dashboards) and must not pay an O(records) directory walk per hit.
		resp["store_records"] = s.st.ApproxLen()
	}
	if s.shards != nil {
		jobs := s.shards.Jobs()
		done, complete := 0, 0
		for _, j := range jobs {
			done += j.Done
			if j.Complete {
				complete++
			}
		}
		resp["shards"] = map[string]any{
			"jobs": len(jobs), "jobs_complete": complete, "shards_done": done,
		}
	}
	if s.journal != nil {
		js := s.journal.Stats()
		jm := map[string]any{
			"appends":          js.Appends,
			"fsyncs":           js.Fsyncs,
			"compactions":      js.Compactions,
			"compact_errors":   js.CompactErrors,
			"snapshot_records": js.SnapshotRecords,
			"log_records":      js.LogRecords,
			"torn_bytes":       js.TornBytes,
			"replaying":        s.replaying.Load(),
		}
		if rs := s.recovered.Load(); rs != nil {
			jm["recovered_jobs"] = rs.Jobs
			jm["recovered_done_shards"] = rs.DoneShards
			jm["replayed_records"] = rs.Records
			jm["replay_skipped"] = rs.Skipped
		}
		resp["journal"] = jm
	}
	writeJSON(w, http.StatusOK, resp)
}

// designRecord is the persistent (and in-memory) summary of one design
// evaluation. Objective values carry their IEEE-754 bits so warm answers
// equal cold ones exactly; settling times may be +Inf (unstable designs),
// which the bit encoding stores losslessly where plain JSON floats cannot.
type designRecord struct {
	Budget   string `json:"budget"`
	Schedule []int  `json:"schedule"`
	Ways     []int  `json:"ways,omitempty"`

	PallBits     uint64  `json:"pall_bits"`
	Pall         float64 `json:"pall"`
	Feasible     bool    `json:"feasible"`
	IdleFeasible bool    `json:"idle_feasible"`

	Apps []designAppRecord `json:"apps,omitempty"`
}

type designAppRecord struct {
	Name            string `json:"name"`
	PerformanceBits uint64 `json:"performance_bits"`
	SettlingBits    uint64 `json:"settling_bits"`
}

func designCodec() evalcache.Codec[*designRecord] {
	return evalcache.Codec[*designRecord]{
		Encode: func(r *designRecord) ([]byte, error) { return json.Marshal(r) },
		Decode: func(data []byte) (*designRecord, error) {
			var r designRecord
			if err := json.Unmarshal(data, &r); err != nil {
				return nil, err
			}
			return &r, nil
		},
	}
}

// designCacheKey renders the canonical key of one design request. The
// case-study taskset and the budget-name mapping are fixed in code
// (internal/apps, exp.Budget), so budget name + joint point identify the
// evaluation; designNamespace versions that assumption.
func designCacheKey(budget string, j sched.JointSchedule) strKey {
	return strKey("b=" + budget + "|" + j.Key())
}

// evalDesign computes a design record by running the paper's stage-1
// holistic design through the per-budget framework. It runs as a
// singleflight leader under the designs cache, so it executes once per
// distinct key; the admission token makes the leader count as one
// computing goroutine under the process-wide governor — cold designs
// beyond capacity queue FIFO (visible as queue_depth/waited on /statsz)
// while cache hits bypass this function entirely. Holding the token is
// deadlock-free: the leader goroutine holds nothing else, and every layer
// underneath only TryAcquires.
func (s *server) evalDesign(k strKey) (*designRecord, error) {
	exec := parallel.Default()
	granted := exec.Acquire(1)
	defer exec.Release(granted)

	budget, jkey, ok := strings.Cut(string(k), "|")
	if !ok {
		return nil, fmt.Errorf("bad design key %q", k)
	}
	budget = strings.TrimPrefix(budget, "b=")
	j, err := parseJoint(jkey)
	if err != nil {
		return nil, err
	}
	fw, _, err := s.frameworks.Get(strKey(budget))
	if err != nil {
		return nil, err
	}
	ev, err := fw.EvaluateJoint(j)
	if err != nil {
		return nil, err
	}
	rec := &designRecord{
		Budget:       budget,
		Schedule:     []int(ev.Schedule.Clone()),
		Ways:         []int(ev.Ways.Clone()),
		PallBits:     math.Float64bits(ev.Pall),
		Pall:         ev.Pall,
		Feasible:     ev.Feasible,
		IdleFeasible: ev.IdleFeasible,
	}
	for _, a := range ev.Apps {
		rec.Apps = append(rec.Apps, designAppRecord{
			Name:            a.Name,
			PerformanceBits: math.Float64bits(a.Performance),
			SettlingBits:    math.Float64bits(a.Design.SettlingTime),
		})
	}
	return rec, nil
}

// parseJoint parses the canonical joint key rendering "(3, 2, 3)" or
// "(3, 2, 3)|w[2 1 1]" back into a point. The service accepts the simpler
// "3,2,3" form in requests; this parser only sees canonical keys.
func parseJoint(key string) (sched.JointSchedule, error) {
	mpart, wpart, hasW := strings.Cut(key, "|w")
	m, err := parseSchedule(strings.Trim(mpart, "()"))
	if err != nil {
		return sched.JointSchedule{}, err
	}
	j := sched.JointSchedule{M: m}
	if hasW {
		w, err := parseSchedule(strings.Trim(wpart, "[]"))
		if err != nil {
			return sched.JointSchedule{}, err
		}
		j.W = sched.Ways(w)
	}
	return j, nil
}

// parseSchedule parses "3,2,3" (also tolerating spaces) into a schedule.
func parseSchedule(text string) (sched.Schedule, error) {
	fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' })
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty schedule")
	}
	m := make(sched.Schedule, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad schedule entry %q", f)
		}
		m[i] = v
	}
	return m, nil
}

// designRequest is the POST body of /v1/design; the GET form carries the
// same fields as query parameters with schedules semicolon-separated.
type designRequest struct {
	Schedules []string `json:"schedules"`
	Ways      string   `json:"ways,omitempty"`
	Budget    string   `json:"budget,omitempty"`
}

// designResponse is one evaluated point of a design batch. Error is set
// instead of the evaluation fields when the entry's schedule failed to
// parse — other entries of the batch still carry their results.
type designResponse struct {
	Schedule     string    `json:"schedule"`
	Ways         string    `json:"ways,omitempty"`
	Pall         float64   `json:"pall"`
	Feasible     bool      `json:"feasible"`
	IdleFeasible bool      `json:"idle_feasible"`
	Apps         []appJSON `json:"apps,omitempty"`
	Error        string    `json:"error,omitempty"`
}

type appJSON struct {
	Name        string   `json:"name"`
	Performance float64  `json:"performance"`
	SettlingMs  *float64 `json:"settling_ms,omitempty"` // omitted when not finite
}

func (s *server) handleDesign(w http.ResponseWriter, r *http.Request) {
	var req designRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		// Batch via repeated schedule parameters (an unescaped ';' is
		// stripped from query strings by net/http, so it cannot separate).
		for _, part := range q["schedule"] {
			if part = strings.TrimSpace(part); part != "" {
				req.Schedules = append(req.Schedules, part)
			}
		}
		req.Ways = q.Get("ways")
		req.Budget = q.Get("budget")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if len(req.Schedules) == 0 {
		writeErr(w, http.StatusBadRequest, "need at least one schedule (e.g. ?schedule=3,2,3)")
		return
	}
	if len(req.Schedules) > maxDesignBatch {
		writeErr(w, http.StatusBadRequest, "at most %d schedules per request", maxDesignBatch)
		return
	}
	if req.Budget == "" {
		req.Budget = s.defaultBudget
	}
	if !validBudget(req.Budget) {
		writeErr(w, http.StatusBadRequest, "unknown budget %q", req.Budget)
		return
	}
	var ways sched.Ways
	if req.Ways != "" {
		wsched, err := parseSchedule(req.Ways)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad ways: %v", err)
			return
		}
		ways = sched.Ways(wsched)
	}

	// The batch fans out on coordinator goroutines that hold no executor
	// tokens: each either answers from the designs cache immediately (warm
	// requests never queue behind cold compute) or waits on the singleflight
	// leader for its key, whose evaluator acquires the governor's admission
	// token (see evalDesign). Identical points within the batch, across
	// batches, and across concurrent requests coalesce in the cache (and on
	// its disk tier); actual computation stays capped at executor capacity.
	type slot struct {
		rec      *designRecord
		parseErr error // caller's fault: this entry's schedule didn't parse
		evalErr  error // service's fault: the framework/evaluation failed
	}
	slots := make([]slot, len(req.Schedules))
	done := make(chan struct{})
	for i := range req.Schedules {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			m, err := parseSchedule(req.Schedules[i])
			if err != nil {
				slots[i].parseErr = err
				return
			}
			j := sched.JointSchedule{M: m, W: ways.Clone()}
			slots[i].rec, _, slots[i].evalErr = s.designs.Get(designCacheKey(req.Budget, j))
		}(i)
	}
	for range req.Schedules {
		<-done
	}

	// An evaluation failure is an internal error, never a 400: report the
	// first one and let the client retry the batch unchanged.
	for i, sl := range slots {
		if sl.evalErr != nil {
			writeErr(w, http.StatusInternalServerError, "schedule %q: %v", req.Schedules[i], sl.evalErr)
			return
		}
	}
	// Parse failures are per-entry: each bad entry carries its own error and
	// the rest of the batch still returns results, under an overall 400.
	status := http.StatusOK
	resp := struct {
		Budget  string           `json:"budget"`
		Results []designResponse `json:"results"`
	}{Budget: req.Budget}
	for i, sl := range slots {
		if sl.parseErr != nil {
			status = http.StatusBadRequest
			resp.Results = append(resp.Results, designResponse{
				Schedule: req.Schedules[i],
				Error:    sl.parseErr.Error(),
			})
			continue
		}
		rec := sl.rec
		dr := designResponse{
			Schedule:     sched.Schedule(rec.Schedule).String(),
			Pall:         math.Float64frombits(rec.PallBits),
			Feasible:     rec.Feasible,
			IdleFeasible: rec.IdleFeasible,
		}
		if len(rec.Ways) > 0 {
			dr.Ways = sched.Ways(rec.Ways).String()
		}
		for _, a := range rec.Apps {
			aj := appJSON{Name: a.Name, Performance: math.Float64frombits(a.PerformanceBits)}
			if st := math.Float64frombits(a.SettlingBits); !math.IsInf(st, 0) && !math.IsNaN(st) {
				ms := st * 1e3
				aj.SettlingMs = &ms
			}
			dr.Apps = append(dr.Apps, aj)
		}
		resp.Results = append(resp.Results, dr)
	}
	writeJSON(w, status, resp)
}

// sweepRequest mirrors cmd/sweep's flags; the GET form uses identically
// named query parameters.
type sweepRequest struct {
	N          int     `json:"n"`
	Apps       int     `json:"apps"`
	Seed       int64   `json:"seed"`
	MaxM       int     `json:"maxm"`
	Starts     int     `json:"starts"`
	Tol        float64 `json:"tol"`
	Objective  string  `json:"objective"`
	Budget     string  `json:"budget"`
	Platforms  int     `json:"platforms"`
	Exhaustive bool    `json:"exhaustive"`
	Workers    int     `json:"workers"`

	// Arrival and hierarchy axes (engine.Grid's fields; see cmd/sweep's
	// -jitter/-l2-* flags).
	Jitter        float64 `json:"jitter"`
	ArrivalSeed   int64   `json:"arrival_seed"`
	ArrivalCycles int     `json:"arrival_cycles"`
	L2Lines       int     `json:"l2_lines"`
	L2Ways        int     `json:"l2_ways"`
	L2Hit         int     `json:"l2_hit"`
	L2Exclusive   bool    `json:"l2_exclusive"`
}

type sweepRow struct {
	Name      string  `json:"name"`
	Seed      int64   `json:"seed"`
	Apps      int     `json:"apps"`
	Best      string  `json:"best,omitempty"`
	Pall      float64 `json:"pall"`
	Found     bool    `json:"found"`
	Evaluated int     `json:"evaluated"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	DiskHits  int64   `json:"disk_hits"`
}

// Request bounds: the service is long-lived and must survive any single
// request, so batch sizes and search-space dimensions are capped — larger
// workloads belong in cmd/sweep shards sharing the same store.
const (
	maxDesignBatch    = 64    // schedules per /v1/design request
	maxSweepScenarios = 10000 // n per /v1/sweep request
	maxSweepApps      = 8     // apps per scenario (box grows as maxm^apps)
	maxSweepMaxM      = 12    // burst-length cap
	maxSweepStarts    = 16    // hybrid starts per scenario
	maxSweepWorkers   = 32    // scenario-level workers
)

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req := sweepRequest{N: 10, Seed: 1, Tol: 0.01, Objective: "timing", Workers: 4}
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		qi := func(name string, dst *int) bool {
			if v := q.Get(name); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					writeErr(w, http.StatusBadRequest, "bad %s=%q", name, v)
					return false
				}
				*dst = n
			}
			return true
		}
		for name, dst := range map[string]*int{
			"n": &req.N, "apps": &req.Apps, "maxm": &req.MaxM,
			"starts": &req.Starts, "platforms": &req.Platforms, "workers": &req.Workers,
			"arrival_cycles": &req.ArrivalCycles,
			"l2_lines":       &req.L2Lines, "l2_ways": &req.L2Ways, "l2_hit": &req.L2Hit,
		} {
			if !qi(name, dst) {
				return
			}
		}
		for name, dst := range map[string]*int64{"seed": &req.Seed, "arrival_seed": &req.ArrivalSeed} {
			if v := q.Get(name); v != "" {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					writeErr(w, http.StatusBadRequest, "bad %s=%q", name, v)
					return
				}
				*dst = n
			}
		}
		for name, dst := range map[string]*float64{"tol": &req.Tol, "jitter": &req.Jitter} {
			if v := q.Get(name); v != "" {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					writeErr(w, http.StatusBadRequest, "bad %s=%q", name, v)
					return
				}
				*dst = f
			}
		}
		if v := q.Get("objective"); v != "" {
			req.Objective = v
		}
		req.Budget = q.Get("budget")
		req.Exhaustive = q.Get("exhaustive") == "1" || q.Get("exhaustive") == "true"
		req.L2Exclusive = q.Get("l2_exclusive") == "1" || q.Get("l2_exclusive") == "true"
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if req.N < 1 || req.N > maxSweepScenarios {
		writeErr(w, http.StatusBadRequest, "n must be in [1, %d]", maxSweepScenarios)
		return
	}
	for _, bound := range []struct {
		name string
		val  int
		max  int
	}{
		{"apps", req.Apps, maxSweepApps},
		{"maxm", req.MaxM, maxSweepMaxM},
		{"starts", req.Starts, maxSweepStarts},
		{"workers", req.Workers, maxSweepWorkers},
	} {
		if bound.val < 0 || bound.val > bound.max {
			writeErr(w, http.StatusBadRequest, "%s must be in [0, %d] (0 = default)", bound.name, bound.max)
			return
		}
	}
	if !validTol(req.Tol) {
		writeErr(w, http.StatusBadRequest, "tol must be a finite positive number")
		return
	}
	var obj engine.Objective
	switch req.Objective {
	case "timing":
		obj = engine.ObjectiveTiming
	case "design":
		obj = engine.ObjectiveDesign
	default:
		writeErr(w, http.StatusBadRequest, "unknown objective %q", req.Objective)
		return
	}
	if req.Budget == "" {
		req.Budget = s.defaultBudget
	}
	if !validBudget(req.Budget) {
		writeErr(w, http.StatusBadRequest, "unknown budget %q", req.Budget)
		return
	}

	grid := engine.Grid{
		N: req.N, Apps: req.Apps, Seed: req.Seed, MaxM: req.MaxM,
		Starts: req.Starts, Tol: req.Tol, Objective: obj,
		Budget: exp.Budget(req.Budget), Platforms: req.Platforms,
		Exhaustive: req.Exhaustive,
		Jitter:     req.Jitter, ArrivalSeed: req.ArrivalSeed, ArrivalCycles: req.ArrivalCycles,
		L2Lines: req.L2Lines, L2Ways: req.L2Ways, L2Hit: req.L2Hit, L2Exclusive: req.L2Exclusive,
	}
	scenarios, err := grid.Scenarios()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Admission control: one token for the computing request goroutine
	// (sweeps have no request-level cache in front of them — warmth lives
	// in the engine's store tier, and a fully checkpointed sweep holds the
	// token only briefly); excess concurrent sweeps queue FIFO.
	exec := parallel.Default()
	granted := exec.Acquire(1)
	defer exec.Release(granted)
	// Resume is always on: a sweep the service (or a CLI sharing the store)
	// already ran answers from checkpoint records.
	results, err := engine.Sweep(engine.Config{
		Workers: req.Workers, Store: s.backend(), Resume: true,
	}, scenarios)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}

	rows := make([]sweepRow, 0, len(results))
	found := 0
	for _, res := range results {
		row := sweepRow{
			Name: res.Name, Seed: res.Seed, Apps: res.AppCount,
			Pall: res.BestValue, Found: res.FoundBest,
			Evaluated: res.Evaluated, Hits: res.CacheStats.Hits,
			Misses: res.CacheStats.Misses, DiskHits: res.CacheStats.DiskHits,
		}
		if res.FoundBest {
			row.Best = res.Best.String()
			found++
		}
		rows = append(rows, row)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rows":  rows,
		"found": found,
		"total": len(rows),
	})
}

// renderTable produces the text rendering of one paper table; the key is
// tableCacheKey's output. Like evalDesign it is a singleflight leader and
// acquires the governor's admission token for the duration of the render
// (Table III/IV run full searches), so cold table renders count against
// executor capacity while cached renders skip this function entirely.
func (s *server) renderTable(k strKey) (string, error) {
	exec := parallel.Default()
	granted := exec.Acquire(1)
	defer exec.Release(granted)

	parts := strings.Split(string(k), "|")
	if len(parts) != 4 {
		return "", fmt.Errorf("bad table key %q", k)
	}
	table, budget := parts[0], strings.TrimPrefix(parts[1], "b=")
	maxM, err := strconv.Atoi(strings.TrimPrefix(parts[2], "m="))
	if err != nil {
		return "", fmt.Errorf("bad table key %q", k)
	}
	tolBits, err := strconv.ParseUint(strings.TrimPrefix(parts[3], "tol="), 16, 64)
	if err != nil {
		return "", fmt.Errorf("bad table key %q", k)
	}
	tol := math.Float64frombits(tolBits)

	switch table {
	case "I":
		rows, err := exp.TableI(apps.CaseStudy(), wcet.PaperPlatform())
		if err != nil {
			return "", err
		}
		return exp.FormatTableI(rows), nil
	case "II":
		return exp.FormatTableII(exp.TableII(apps.CaseStudy())), nil
	case "III":
		fw, _, err := s.frameworks.Get(strKey(budget))
		if err != nil {
			return "", err
		}
		t3, err := exp.TableIII(fw, exp.PaperRoundRobin, exp.PaperOptimal)
		if err != nil {
			return "", err
		}
		return exp.FormatTableIII(t3), nil
	case "IV":
		rows, err := exp.PartitionCaseStudyWith(maxM, tol, engine.Config{
			Workers: 1, Store: s.backend(), Resume: true,
		})
		if err != nil {
			return "", err
		}
		return exp.FormatPartitionTable(rows), nil
	default:
		return "", fmt.Errorf("unknown table %q", table)
	}
}

func tableCacheKey(table, budget string, maxM int, tol float64) strKey {
	return strKey(fmt.Sprintf("%s|b=%s|m=%d|tol=%016x", table, budget, maxM, math.Float64bits(tol)))
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	switch table {
	case "I", "II", "III", "IV":
	default:
		writeErr(w, http.StatusNotFound, "unknown table %q (want I, II, III, or IV)", table)
		return
	}
	q := r.URL.Query()
	budget := q.Get("budget")
	if budget == "" {
		budget = s.defaultBudget
	}
	if !validBudget(budget) {
		writeErr(w, http.StatusBadRequest, "unknown budget %q", budget)
		return
	}
	maxM, tol := 6, 0.01
	if v := q.Get("maxm"); v != "" {
		// Table IV runs a maxm^apps search: maxm obeys the same cap as
		// /v1/sweep or a single request could take the service down.
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxSweepMaxM {
			writeErr(w, http.StatusBadRequest, "maxm must be in [1, %d]", maxSweepMaxM)
			return
		}
		maxM = n
	}
	if v := q.Get("tol"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || !validTol(f) {
			writeErr(w, http.StatusBadRequest, "tol must be a finite positive number, got %q", v)
			return
		}
		tol = f
	}
	text, _, err := s.tables.Get(tableCacheKey(table, budget, maxM, tol))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"table": table, "text": text})
}
