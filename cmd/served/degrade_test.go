package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServedShedsOnDeepQueue pins load shedding: with -max-queue set and
// the executor queue reading deeper than the bound, compute requests are
// refused with 429 + Retry-After before touching the engine, the shed is
// counted on /statsz, and a drained queue readmits traffic.
func TestServedShedsOnDeepQueue(t *testing.T) {
	s, hs := testServer(t, "")
	s.maxQueue = 4
	depth := int64(10)
	s.queueDepth = func() int64 { return depth }

	resp, err := http.Get(hs.URL + "/v1/design?schedule=3,2,3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("deep-queue design status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Observability must survive overload: /statsz is outside the envelope
	// and reports the shed.
	var stats struct {
		Resilience struct {
			Shed     int64 `json:"shed"`
			MaxQueue int   `json:"max_queue"`
		} `json:"resilience"`
	}
	if code := getJSON(t, hs.URL+"/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz under overload: %d", code)
	}
	if stats.Resilience.Shed != 1 || stats.Resilience.MaxQueue != 4 {
		t.Fatalf("resilience gauges %+v", stats.Resilience)
	}

	// Queue drains: the same request computes normally.
	depth = 0
	if code := getJSON(t, hs.URL+"/v1/design?schedule=3,2,3", nil); code != http.StatusOK {
		t.Fatalf("post-drain design status %d", code)
	}
}

// TestComputeDeadlineBuffersOrDegrades unit-tests the compute envelope: a
// handler that beats the deadline flushes its buffered response intact
// (status, headers, body); one that outlives it yields 503 + Retry-After
// with the timeout counted, while the handler finishes harmlessly into the
// dropped buffer.
func TestComputeDeadlineBuffersOrDegrades(t *testing.T) {
	s, _ := testServer(t, "")
	s.reqTimeout = 50 * time.Millisecond

	fast := s.compute(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Probe", "yes")
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("steeped"))
	})
	rec := httptest.NewRecorder()
	fast(rec, httptest.NewRequest(http.MethodGet, "/v1/design", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "steeped" || rec.Header().Get("X-Probe") != "yes" {
		t.Fatalf("fast handler not flushed intact: code %d body %q headers %v", rec.Code, rec.Body.String(), rec.Header())
	}

	release := make(chan struct{})
	slow := s.compute(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("too late"))
	})
	rec = httptest.NewRecorder()
	start := time.Now()
	slow(rec, httptest.NewRequest(http.MethodGet, "/v1/sweep", nil))
	close(release)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow handler status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("timeout response missing Retry-After")
	}
	if strings.Contains(rec.Body.String(), "too late") {
		t.Fatalf("timed-out handler's bytes leaked into the response: %q", rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline response took %v", elapsed)
	}
	if got := s.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts gauge %d, want 1", got)
	}
}

// TestServedReadyz pins readiness: memory-only mode is always ready,
// store-backed mode proves a sequence-numbered write round-trips, and
// repeated probes rewrite one record instead of growing the store.
func TestServedReadyz(t *testing.T) {
	_, memHS := testServer(t, "")
	var memBody struct {
		Ready bool `json:"ready"`
		Store bool `json:"store"`
	}
	if code := getJSON(t, memHS.URL+"/readyz", &memBody); code != http.StatusOK {
		t.Fatalf("memory-only readyz status %d", code)
	}
	if !memBody.Ready || memBody.Store {
		t.Fatalf("memory-only readyz body %+v", memBody)
	}

	s, hs := testServer(t, t.TempDir())
	var first, second struct {
		Ready bool  `json:"ready"`
		Probe int64 `json:"probe"`
	}
	if code := getJSON(t, hs.URL+"/readyz", &first); code != http.StatusOK || !first.Ready {
		t.Fatalf("store readyz: code %d body %+v", code, first)
	}
	lenAfterFirst := s.st.Len()
	if code := getJSON(t, hs.URL+"/readyz", &second); code != http.StatusOK || !second.Ready {
		t.Fatalf("store readyz (2nd): code %d body %+v", code, second)
	}
	if second.Probe != first.Probe+1 {
		t.Fatalf("probe sequence %d then %d; want consecutive", first.Probe, second.Probe)
	}
	if got := s.st.Len(); got != lenAfterFirst {
		t.Fatalf("repeated probes grew the store: %d → %d records", lenAfterFirst, got)
	}
}

// TestServedStatszResilienceGauges pins the /statsz additions: the
// resilience block is always present with the configured bounds, and the
// readyz probe counter feeds it.
func TestServedStatszResilienceGauges(t *testing.T) {
	s, hs := testServer(t, t.TempDir())
	s.maxQueue = 7
	s.reqTimeout = 1500 * time.Millisecond
	getJSON(t, hs.URL+"/readyz", nil)

	var stats struct {
		Resilience struct {
			Shed             int64 `json:"shed"`
			Timeouts         int64 `json:"timeouts"`
			MaxQueue         int   `json:"max_queue"`
			RequestTimeoutMS int64 `json:"request_timeout_ms"`
			ReadyProbes      int64 `json:"ready_probes"`
		} `json:"resilience"`
	}
	if code := getJSON(t, hs.URL+"/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	r := stats.Resilience
	if r.MaxQueue != 7 || r.RequestTimeoutMS != 1500 || r.ReadyProbes != 1 || r.Shed != 0 || r.Timeouts != 0 {
		t.Fatalf("resilience gauges %+v", r)
	}
}
