package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
)

// testServer mounts the service on an httptest server, with or without a
// persistent store.
func testServer(t *testing.T, dir string) (*server, *httptest.Server) {
	t.Helper()
	var st *store.Store
	if dir != "" {
		var err error
		if st, err = store.Open(dir); err != nil {
			t.Fatal(err)
		}
	}
	s := newServer(st, "tiny")
	hs := httptest.NewServer(s.mux)
	t.Cleanup(hs.Close)
	return s, hs
}

// getJSON fetches a URL and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServedHealthz(t *testing.T) {
	_, hs := testServer(t, "")
	var body map[string]any
	if code := getJSON(t, hs.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if body["ok"] != true {
		t.Fatalf("healthz body %v", body)
	}
}

func TestServedTables(t *testing.T) {
	_, hs := testServer(t, t.TempDir())
	for _, table := range []string{"I", "II", "IV"} {
		var body map[string]string
		if code := getJSON(t, hs.URL+"/v1/table/"+table, &body); code != http.StatusOK {
			t.Fatalf("table %s status %d", table, code)
		}
		if body["table"] != table || !strings.Contains(body["text"], "TABLE") {
			t.Fatalf("table %s body %v", table, body)
		}
	}
	// Table IV must carry the partition case study rows.
	var t4 map[string]string
	getJSON(t, hs.URL+"/v1/table/IV", &t4)
	for _, want := range []string{"paper-128x1", "8way-512", "JOINT CACHE-PARTITION"} {
		if !strings.Contains(t4["text"], want) {
			t.Errorf("table IV missing %q:\n%s", want, t4["text"])
		}
	}
	if code := getJSON(t, hs.URL+"/v1/table/V", nil); code != http.StatusNotFound {
		t.Errorf("unknown table status %d, want 404", code)
	}
	if code := getJSON(t, hs.URL+"/v1/table/IV?maxm=zero", nil); code != http.StatusBadRequest {
		t.Errorf("bad maxm status %d, want 400", code)
	}
}

func TestServedDesignBatch(t *testing.T) {
	_, hs := testServer(t, "")
	var body struct {
		Budget  string           `json:"budget"`
		Results []designResponse `json:"results"`
	}
	url := hs.URL + "/v1/design?schedule=1,1,1&schedule=3,2,3&budget=tiny"
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("design status %d", code)
	}
	if len(body.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(body.Results))
	}
	if body.Results[0].Schedule != "(1, 1, 1)" || body.Results[1].Schedule != "(3, 2, 3)" {
		t.Fatalf("batch order/content wrong: %+v", body.Results)
	}
	for _, r := range body.Results {
		if len(r.Apps) != 3 {
			t.Fatalf("design result missing apps: %+v", r)
		}
	}

	// POST form, same evaluation.
	resp, err := http.Post(hs.URL+"/v1/design", "application/json",
		strings.NewReader(`{"schedules":["1,1,1"],"budget":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var post struct {
		Results []designResponse `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&post); err != nil {
		t.Fatal(err)
	}
	if len(post.Results) != 1 || post.Results[0].Pall != body.Results[0].Pall {
		t.Fatalf("POST result diverged from GET: %+v vs %+v", post.Results, body.Results[0])
	}

	oversize := "/v1/design?schedule=1,1,1" + strings.Repeat("&schedule=1,1,1", maxDesignBatch)
	for _, bad := range []string{
		"/v1/design",                          // no schedule
		"/v1/design?schedule=a,b",             // unparsable
		"/v1/design?schedule=1,1,1&budget=xl", // unknown budget
		oversize,                              // batch over the cap
	} {
		if code := getJSON(t, hs.URL+bad, nil); code != http.StatusBadRequest {
			t.Errorf("%.60s status %d, want 400", bad, code)
		}
	}
}

func TestServedSweepAndStatszDiskHits(t *testing.T) {
	dir := t.TempDir()
	_, hs := testServer(t, dir)
	var first struct {
		Rows  []sweepRow `json:"rows"`
		Found int        `json:"found"`
		Total int        `json:"total"`
	}
	url := hs.URL + "/v1/sweep?n=3&seed=5&exhaustive=1"
	if code := getJSON(t, url, &first); code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}
	if first.Total != 3 || len(first.Rows) != 3 {
		t.Fatalf("sweep rows %+v", first)
	}

	// A new service process on the same store answers the same sweep from
	// checkpoints; the rows must match exactly and /statsz must show
	// disk-tier traffic.
	_, hs2 := testServer(t, dir)
	var second struct {
		Rows []sweepRow `json:"rows"`
	}
	if code := getJSON(t, hs2.URL+"/v1/sweep?n=3&seed=5&exhaustive=1", &second); code != http.StatusOK {
		t.Fatalf("warm sweep failed")
	}
	for i := range first.Rows {
		a, b := first.Rows[i], second.Rows[i]
		b.DiskHits = a.DiskHits // the one field allowed to differ
		if a != b {
			t.Fatalf("warm sweep row %d diverged: %+v vs %+v", i, a, b)
		}
	}
	var stats struct {
		Store store.Stats `json:"store"`
	}
	if code := getJSON(t, hs2.URL+"/statsz", &stats); code != http.StatusOK {
		t.Fatal("statsz failed")
	}
	if stats.Store.Hits == 0 {
		t.Fatalf("warm service shows no disk-tier hits: %+v", stats.Store)
	}

	if code := getJSON(t, hs.URL+"/v1/sweep?n=0", nil); code != http.StatusBadRequest {
		t.Errorf("n=0 status %d, want 400", code)
	}
	if code := getJSON(t, hs.URL+"/v1/sweep?n=2&objective=psychic", nil); code != http.StatusBadRequest {
		t.Errorf("bad objective status %d, want 400", code)
	}
	// Resource caps: one request must not be able to exhaust the service.
	if code := getJSON(t, hs.URL+"/v1/sweep?n=2&maxm=50", nil); code != http.StatusBadRequest {
		t.Errorf("maxm=50 status %d, want 400", code)
	}
	if code := getJSON(t, hs.URL+"/v1/sweep?n=2&apps=100", nil); code != http.StatusBadRequest {
		t.Errorf("apps=100 status %d, want 400", code)
	}
}

// TestServedSweepScenarioAxes drives the arrival and hierarchy parameters
// of /v1/sweep: jittered sweeps answer deterministically (including from a
// fresh process on the warm store), differ from the periodic rows, and
// out-of-range axis values are rejected.
func TestServedSweepScenarioAxes(t *testing.T) {
	dir := t.TempDir()
	_, hs := testServer(t, dir)
	type sweepResp struct {
		Rows []sweepRow `json:"rows"`
	}
	var periodic, jittered sweepResp
	if code := getJSON(t, hs.URL+"/v1/sweep?n=3&seed=5&exhaustive=1", &periodic); code != http.StatusOK {
		t.Fatalf("periodic sweep status %d", code)
	}
	url := "/v1/sweep?n=3&seed=5&exhaustive=1&jitter=0.2&arrival_seed=7&arrival_cycles=16"
	if code := getJSON(t, hs.URL+url, &jittered); code != http.StatusOK {
		t.Fatalf("jittered sweep status %d", code)
	}
	same := true
	for i := range periodic.Rows {
		if periodic.Rows[i].Pall != jittered.Rows[i].Pall {
			same = false
		}
	}
	if same {
		t.Error("jitter=0.2 left every sweep row unchanged")
	}
	_, hs2 := testServer(t, dir)
	var warm sweepResp
	if code := getJSON(t, hs2.URL+url, &warm); code != http.StatusOK {
		t.Fatalf("warm jittered sweep status %d", code)
	}
	for i := range jittered.Rows {
		a, b := jittered.Rows[i], warm.Rows[i]
		b.DiskHits = a.DiskHits
		if a != b {
			t.Fatalf("warm jittered row %d diverged: %+v vs %+v", i, a, b)
		}
	}
	// The hierarchy axis must parse and answer (bit-identity to the
	// single-level rows on conflict-free random programs is pinned at the
	// CLI level; here we only pin the plumbing).
	var l2 sweepResp
	if code := getJSON(t, hs.URL+"/v1/sweep?n=2&seed=5&l2_lines=512&l2_ways=8&l2_exclusive=1", &l2); code != http.StatusOK {
		t.Fatalf("l2 sweep status %d", code)
	}
	if len(l2.Rows) != 2 {
		t.Fatalf("l2 sweep rows %+v", l2)
	}
	for _, bad := range []string{
		"/v1/sweep?n=2&jitter=1.5",
		"/v1/sweep?n=2&jitter=-0.1",
		"/v1/sweep?n=2&jitter=NaN",
		"/v1/sweep?n=2&jitter=x",
		"/v1/sweep?n=2&l2_lines=-4",
		"/v1/sweep?n=2&l2_lines=510",            // default 4 ways don't divide 510 lines
		"/v1/sweep?n=2&l2_lines=512&l2_hit=200", // L2 hit above the memory cost
		"/v1/sweep?n=2&arrival_seed=x",
	} {
		if code := getJSON(t, hs.URL+bad, nil); code != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", bad, code)
		}
	}
}

// TestServedDesignPersists pins the store round-trip of design records:
// a fresh server on a warm store serves the identical design without
// recomputing (visible as a designs-cache disk hit).
func TestServedDesignPersists(t *testing.T) {
	dir := t.TempDir()
	_, hs := testServer(t, dir)
	var cold struct {
		Results []designResponse `json:"results"`
	}
	if code := getJSON(t, hs.URL+"/v1/design?schedule=2,2,2", &cold); code != http.StatusOK {
		t.Fatal("cold design failed")
	}

	s2, hs2 := testServer(t, dir)
	var warm struct {
		Results []designResponse `json:"results"`
	}
	if code := getJSON(t, hs2.URL+"/v1/design?schedule=2,2,2", &warm); code != http.StatusOK {
		t.Fatal("warm design failed")
	}
	if cold.Results[0].Pall != warm.Results[0].Pall {
		t.Fatalf("warm design diverged: %v vs %v", cold.Results[0], warm.Results[0])
	}
	if st := s2.designs.Stats(); st.DiskHits != 1 || st.Executions() != 0 {
		t.Fatalf("warm design did not come from disk: %+v", st)
	}
}

func TestServedRunFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-budget", "nope"}, &sb); err == nil {
		t.Error("unknown budget accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestParseJointRoundTrip(t *testing.T) {
	for _, text := range []string{"(3, 2, 3)", "(3, 2, 3)|w[2 1 1]"} {
		j, err := parseJoint(text)
		if err != nil {
			t.Fatalf("parseJoint(%q): %v", text, err)
		}
		if j.Key() != text {
			t.Fatalf("parseJoint(%q).Key() = %q", text, j.Key())
		}
	}
	if _, err := parseJoint("()"); err == nil {
		t.Error("empty joint accepted")
	}
}

// TestServedTableAndSweepBounds pins the request-bound fixes: /v1/table
// must cap maxm like /v1/sweep does (a maxm^apps search bypassing
// maxSweepMaxM could take the service down), and both endpoints must
// reject tolerances the searches cannot converge under.
func TestServedTableAndSweepBounds(t *testing.T) {
	_, hs := testServer(t, "")
	for _, bad := range []string{
		"/v1/table/IV?maxm=100",
		"/v1/table/IV?maxm=13",
		"/v1/table/IV?tol=NaN",
		"/v1/table/IV?tol=-1",
		"/v1/table/IV?tol=0",
		"/v1/table/IV?tol=%2BInf",
		"/v1/sweep?n=2&tol=NaN",
		"/v1/sweep?n=2&tol=-0.5",
		"/v1/sweep?n=2&tol=0",
		"/v1/sweep?n=2&tol=%2BInf",
	} {
		if code := getJSON(t, hs.URL+bad, nil); code != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", bad, code)
		}
	}
	// The POST body path runs through the same validation.
	resp, err := http.Post(hs.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"n": 2, "tol": -1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST sweep tol=-1 status %d, want 400", resp.StatusCode)
	}
	// In-cap values still work.
	var body map[string]string
	if code := getJSON(t, hs.URL+"/v1/table/IV?maxm=4&tol=0.05", &body); code != http.StatusOK {
		t.Errorf("maxm=4 tol=0.05 status %d, want 200", code)
	}
}

// TestServedDesignPartialBatch pins the per-entry error contract: a batch
// mixing parsable and unparsable schedules answers 400 with the good
// entries evaluated and each bad entry carrying its own error, while an
// internal evaluation failure (well-formed schedule of the wrong length)
// is a 500, not the caller's fault.
func TestServedDesignPartialBatch(t *testing.T) {
	_, hs := testServer(t, "")
	var body struct {
		Results []designResponse `json:"results"`
	}
	url := hs.URL + "/v1/design?schedule=1,1,1&schedule=bogus&schedule=3,2,3"
	if code := getJSON(t, url, &body); code != http.StatusBadRequest {
		t.Fatalf("mixed batch status %d, want 400", code)
	}
	if len(body.Results) != 3 {
		t.Fatalf("mixed batch returned %d results, want all 3", len(body.Results))
	}
	if body.Results[0].Error != "" || body.Results[0].Schedule != "(1, 1, 1)" || len(body.Results[0].Apps) != 3 {
		t.Fatalf("good entry before the bad one lost its result: %+v", body.Results[0])
	}
	if body.Results[1].Error == "" || body.Results[1].Schedule != "bogus" {
		t.Fatalf("bad entry not reported in place: %+v", body.Results[1])
	}
	if body.Results[2].Error != "" || len(body.Results[2].Apps) != 3 {
		t.Fatalf("good entry after the bad one lost its result: %+v", body.Results[2])
	}

	// schedule=1,1 parses fine but cannot be evaluated against the 3-app
	// case study: an evaluator failure, so a 500.
	if code := getJSON(t, hs.URL+"/v1/design?schedule=1,1", nil); code != http.StatusInternalServerError {
		t.Errorf("eval failure status %d, want 500", code)
	}
	// A mixed batch with an eval failure is also a 500: retrying the batch
	// unchanged is the right client move, dropping entries is not.
	if code := getJSON(t, hs.URL+"/v1/design?schedule=1,1,1&schedule=1,1", nil); code != http.StatusInternalServerError {
		t.Errorf("mixed eval-failure batch status %d, want 500", code)
	}
}

// TestServedStatszApproxRecords pins that the stats endpoint reports the
// store's O(1) approximate record count (the exact Len walk is an offline
// tool and must stay off the request path).
func TestServedStatszApproxRecords(t *testing.T) {
	dir := t.TempDir()
	s, hs := testServer(t, dir)
	if code := getJSON(t, hs.URL+"/v1/sweep?n=2&seed=9", nil); code != http.StatusOK {
		t.Fatal("seeding sweep failed")
	}
	var stats struct {
		Records int64          `json:"store_records"`
		Shards  map[string]any `json:"shards"`
	}
	if code := getJSON(t, hs.URL+"/statsz", &stats); code != http.StatusOK {
		t.Fatal("statsz failed")
	}
	if stats.Records <= 0 {
		t.Fatalf("store_records = %d after a stored sweep", stats.Records)
	}
	if want := s.st.Len(); stats.Records != int64(want) {
		t.Fatalf("approximate count %d diverged from exact %d", stats.Records, want)
	}
	if stats.Shards == nil {
		t.Fatal("statsz missing shards section on a coordinator")
	}
}

// TestServedFabricEndpointsRequireStore pins the no-store behavior of the
// cluster endpoints: they answer (the mux routes them) but refuse, since a
// coordinator without a durable store would recompute forever.
func TestServedFabricEndpointsRequireStore(t *testing.T) {
	_, hs := testServer(t, "")
	if code := getJSON(t, hs.URL+"/v1/store/any/key", nil); code != http.StatusServiceUnavailable {
		t.Errorf("/v1/store without store: status %d, want 503", code)
	}
	resp, err := http.Post(hs.URL+"/v1/shards/acquire", "application/json", strings.NewReader(`{"worker":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/v1/shards without store: status %d, want 503", resp.StatusCode)
	}

	// With a store both protocols come alive on the same mux.
	_, hs2 := testServer(t, t.TempDir())
	resp2, err := http.Post(hs2.URL+"/v1/shards/jobs", "application/json",
		strings.NewReader(`{"n": 2, "seed": 1, "shards": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("submit on coordinator: status %d, want 200", resp2.StatusCode)
	}
	var sub struct {
		Job    string `json:"job"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job == "" || sub.Shards != 2 {
		t.Fatalf("submit response %+v", sub)
	}
}
