package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/parallel"
)

// TestSharedExecutorStress drives the three heaviest consumers of the
// process-wide concurrency governor at once — HTTP design batches through
// the service, a timing-objective scenario sweep, and a shared-cache
// exhaustive search — and checks that results match their serial baselines
// while the executor ends the run with no leaked tokens or stuck waiters.
// CI runs this under -race; it is the integration pin for the "one
// executor, many nested layers, no deadlock" contract.
func TestSharedExecutorStress(t *testing.T) {
	_, hs := testServer(t, "")
	defer hs.Close()

	scenarios := make([]engine.Scenario, 6)
	for i := range scenarios {
		scenarios[i] = engine.Scenario{Seed: int64(i + 1), MaxM: 5, Exhaustive: true}
	}
	serialSweep, err := engine.Sweep(engine.Config{Workers: 1}, scenarios)
	if err != nil {
		t.Fatal(err)
	}

	fw, err := exp.DefaultFramework(exp.Budget("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	serialEx, err := fw.OptimizeExhaustiveParallel(3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	// HTTP design batches (each fans out over the executor inside the
	// handler) racing against the compute below.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				url := fmt.Sprintf("%s/v1/design?schedule=1,1,1&schedule=2,1,1&schedule=%d,1,1", hs.URL, 1+g)
				resp, err := http.Get(url)
				if err != nil {
					report("design request: %v", err)
					return
				}
				var body struct {
					Results []designResponse `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					report("design decode: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK || len(body.Results) != 3 {
					report("design status %d results %d", resp.StatusCode, len(body.Results))
					return
				}
			}
		}(g)
	}

	// Concurrent sweeps (scenario-level ForEach over the same executor).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := engine.Sweep(engine.Config{Workers: 4}, scenarios)
			if err != nil {
				report("sweep: %v", err)
				return
			}
			for i := range got {
				if got[i].Best.String() != serialSweep[i].Best.String() || got[i].BestValue != serialSweep[i].BestValue {
					report("sweep scenario %d diverged from serial", i)
					return
				}
			}
		}()
	}

	// Exhaustive searches through a shared cache (nested: search ForEach →
	// framework evaluation → per-app ForEach → PSO pool).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := fw.OptimizeExhaustiveParallel(3, 8, nil)
			if err != nil {
				report("exhaustive: %v", err)
				return
			}
			if !got.Best.Equal(serialEx.Best) || got.BestValue != serialEx.BestValue {
				report("exhaustive diverged: %v@%v vs %v@%v", got.Best, got.BestValue, serialEx.Best, serialEx.BestValue)
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := parallel.Default().Stats()
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("executor left dirty after stress: %+v", st)
	}
}

// TestStatszExecutorGauges pins the /statsz executor block.
func TestStatszExecutorGauges(t *testing.T) {
	_, hs := testServer(t, "")
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Executor struct {
			Capacity   int `json:"capacity"`
			InFlight   int `json:"in_flight"`
			QueueDepth int `json:"queue_depth"`
		} `json:"executor"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Executor.Capacity < 1 {
		t.Fatalf("executor capacity %d", body.Executor.Capacity)
	}
	if body.Executor.InFlight != 0 || body.Executor.QueueDepth != 0 {
		t.Fatalf("idle service reports in_flight=%d queue_depth=%d", body.Executor.InFlight, body.Executor.QueueDepth)
	}
}
