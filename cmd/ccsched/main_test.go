package main

import (
	"strings"
	"testing"
)

func TestRunFlagAndArgErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"unknown mode", []string{"-mode", "frobnicate", "-budget", "tiny"}},
		{"short schedule", []string{"-mode", "timeline", "-schedule", "1,2", "-budget", "tiny"}},
		{"bad burst", []string{"-mode", "timeline", "-schedule", "1,x,3", "-budget", "tiny"}},
		{"zero burst", []string{"-mode", "timeline", "-schedule", "1,0,3", "-budget", "tiny"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

func TestRunWcetMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "wcet", "-budget", "tiny"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "907.55", "452.15", "Guaranteed WCET reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("wcet output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTimelineMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "timeline", "-schedule", "2,1,1", "-budget", "tiny"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "schedule (2, 1, 1)") {
		t.Errorf("timeline missing schedule header:\n%s", out)
	}
	if !strings.Contains(out, "cold cache") || !strings.Contains(out, "warm cache") {
		t.Errorf("timeline missing cache states:\n%s", out)
	}
}

func TestRunEvalMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "eval", "-schedule", "1,1,1", "-budget", "tiny"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Schedule (1, 1, 1): P_all =") {
		t.Errorf("eval output missing P_all line:\n%s", out)
	}
	if !strings.Contains(out, "settling") {
		t.Errorf("eval output missing per-app settling:\n%s", out)
	}
}
