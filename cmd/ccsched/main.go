// Command ccsched runs the cache-aware control co-design case study of the
// paper end to end: WCET analysis (Table I), schedule evaluation and
// comparison (Table III), and optimal-schedule search (Section V).
//
// Usage:
//
//	ccsched [-mode compare|hybrid|exhaustive|multicore|eval|wcet|timeline]
//	        [-schedule m1,m2,m3] [-budget tiny|quick|paper|deep] [-maxm N]
//	        [-cores N] [-bb]
//
// Mode multicore places the applications on -cores cores (each with a
// private cache) and co-optimizes the placement with every core's
// schedule, reporting the winning assignment against the single-core
// optimum; -bb prunes the search with the branch-and-bound bound (the
// optimum is pinned identical either way).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// errUsage signals a flag-parse failure the FlagSet already reported on
// stdout; main must not print it a second time.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccsched", flag.ContinueOnError)
	fs.SetOutput(stdout)
	mode := fs.String("mode", "compare", "compare | hybrid | exhaustive | eval | wcet | timeline")
	scheduleFlag := fs.String("schedule", "3,2,3", "schedule m1,m2,... for -mode eval/timeline")
	budget := fs.String("budget", "quick", "design budget: tiny | quick | paper | deep")
	maxM := fs.Int("maxm", 12, "burst-length cap for exhaustive search")
	cores := fs.Int("cores", 2, "core count for -mode multicore")
	bb := fs.Bool("bb", false, "prune -mode multicore with branch-and-bound")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	plat := wcet.PaperPlatform()
	study := apps.CaseStudy()
	fw, err := core.New(study, plat, exp.Budget(*budget))
	if err != nil {
		return err
	}
	fw.ReportDtMax = 10e-6

	printTableI(stdout, fw)

	switch *mode {
	case "wcet":
		// Table I only (already printed).
	case "timeline":
		s, err := parseSchedule(*scheduleFlag, len(study))
		if err != nil {
			return err
		}
		txt, err := sched.FormatTimeline(fw.Timings, s)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, txt)
	case "eval":
		s, err := parseSchedule(*scheduleFlag, len(study))
		if err != nil {
			return err
		}
		ev, err := fw.EvaluateSchedule(s)
		if err != nil {
			return err
		}
		printEval(stdout, ev)
	case "compare":
		rr, err := fw.EvaluateSchedule(sched.RoundRobin(len(study)))
		if err != nil {
			return err
		}
		s, err := parseSchedule(*scheduleFlag, len(study))
		if err != nil {
			return err
		}
		opt, err := fw.EvaluateSchedule(s)
		if err != nil {
			return err
		}
		printComparison(stdout, rr, opt)
	case "hybrid":
		starts := []sched.Schedule{{4, 2, 2}, {1, 2, 1}}
		res, err := fw.OptimizeHybrid(starts, search.Options{Tolerance: 0.01, MaxM: *maxM})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nHybrid search (paper Section V):")
		for _, r := range res.Runs {
			fmt.Fprintf(stdout, "  start %v -> best %v (P_all=%.4f) after %d schedule evaluations\n",
				r.Start, r.Best, r.BestValue, r.Evaluations)
			fmt.Fprintf(stdout, "    path: %v\n", r.Path)
		}
		fmt.Fprintf(stdout, "  overall best: %v with P_all = %.4f\n", res.Best, res.BestValue)
	case "multicore":
		opt := search.MulticoreOptions{MaxM: *maxM}
		if *bb {
			weights := make([]float64, len(fw.Apps))
			for i, a := range fw.Apps {
				weights[i] = a.Weight
			}
			opt.Bounder = search.TrivialBounder(weights)
		}
		single, err := fw.OptimizeExhaustive(*maxM)
		if err != nil {
			return err
		}
		mc, err := fw.OptimizeMulticoreCoDesign(*cores, opt, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nMulti-core co-design on %d cores (placement x schedule, %d core points", *cores, mc.Evaluated)
		if *bb {
			fmt.Fprintf(stdout, ", %d placements + %d subtrees pruned", mc.AssignmentsPruned, mc.SubtreesPruned)
		}
		fmt.Fprintln(stdout, "):")
		if !mc.FoundBest {
			fmt.Fprintln(stdout, "  no feasible placement found")
			return nil
		}
		fmt.Fprintf(stdout, "  placement %v: P_all = %.4f (single-core optimum %v: %.4f, %+.1f%%)\n",
			mc.Assignment, mc.BestValue, single.Best, single.BestValue,
			100*(mc.BestValue-single.BestValue)/single.BestValue)
		for c, sol := range mc.PerCore {
			fmt.Fprintf(stdout, "  core %d: apps %v  schedule %v  P = %.4f\n", c, sol.Apps, sol.Point, sol.Value)
		}
	case "exhaustive":
		res, err := fw.OptimizeExhaustive(*maxM)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nExhaustive search: %d schedules evaluated, %d feasible\n", res.Evaluated, res.Feasible)
		fmt.Fprintf(stdout, "  best: %v with P_all = %.4f\n", res.Best, res.BestValue)
		fmt.Fprintln(stdout, "  full landscape (schedule, P_all, feasible, per-app settling ms):")
		for i, s := range res.All {
			ev, err := fw.EvaluateSchedule(s)
			if err != nil {
				continue
			}
			fmt.Fprintf(stdout, "   %v  P=%8.4f feas=%-5v  ", s, res.AllOutcomes[i].Pall, res.AllOutcomes[i].Feasible)
			for _, ar := range ev.Apps {
				fmt.Fprintf(stdout, " %6.2f", ar.Design.SettlingTime*1e3)
			}
			fmt.Fprintln(stdout)
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func parseSchedule(s string, n int) (sched.Schedule, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("schedule %q must have %d entries", s, n)
	}
	out := make(sched.Schedule, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad schedule entry %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func printTableI(w io.Writer, fw *core.Framework) {
	fmt.Fprintln(w, "Table I - WCET results with and without cache reuse:")
	fmt.Fprintf(w, "  %-28s", "Application")
	for _, a := range fw.Apps {
		fmt.Fprintf(w, "%12s", a.Name)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(i int) float64) {
		fmt.Fprintf(w, "  %-28s", label)
		for i := range fw.Apps {
			fmt.Fprintf(w, "%9.2f us", f(i))
		}
		fmt.Fprintln(w)
	}
	plat := fw.Platform
	row("WCET w/o cache reuse", func(i int) float64 { return plat.CyclesToMicros(fw.WCETResults[i].ColdCycles) })
	row("Guaranteed WCET reduction", func(i int) float64 { return plat.CyclesToMicros(fw.WCETResults[i].ReductionCycles) })
	row("WCET w/ cache reuse", func(i int) float64 { return plat.CyclesToMicros(fw.WCETResults[i].WarmCycles) })
}

func printEval(w io.Writer, ev *core.ScheduleEval) {
	fmt.Fprintf(w, "\nSchedule %v: P_all = %.4f (feasible=%v)\n", ev.Schedule, ev.Pall, ev.Feasible)
	for _, ar := range ev.Apps {
		fmt.Fprintf(w, "  %-4s settling %7.2f ms  (deadline %s, P=%.4f, rho=%.4f, maxU=%.3g, settled=%v)\n",
			ar.Name, ar.Design.SettlingTime*1e3, fmtMs(ar.Timing), ar.Performance,
			ar.Design.SpectralRadius, ar.Design.MaxInput, ar.Design.Settled)
	}
}

func fmtMs(as sched.AppSchedule) string {
	return fmt.Sprintf("gap %.2fms hmax %.2fms", as.Gap*1e3, as.MaxPeriod()*1e3)
}

func printComparison(w io.Writer, rr, opt *core.ScheduleEval) {
	fmt.Fprintln(w, "\nTable III - control performance comparison:")
	fmt.Fprintf(w, "  %-34s", "Application")
	for _, ar := range rr.Apps {
		fmt.Fprintf(w, "%10s", ar.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  Settling time for %-16v", rr.Schedule)
	for _, ar := range rr.Apps {
		fmt.Fprintf(w, "%7.1f ms", ar.Design.SettlingTime*1e3)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  Settling time for %-16v", opt.Schedule)
	for _, ar := range opt.Apps {
		fmt.Fprintf(w, "%7.1f ms", ar.Design.SettlingTime*1e3)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-34s", "Control performance improvement")
	for i := range rr.Apps {
		s0 := rr.Apps[i].Design.SettlingTime
		s1 := opt.Apps[i].Design.SettlingTime
		fmt.Fprintf(w, "%8.0f %%", 100*(s0-s1)/s0)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\n  P_all %v = %.4f,  P_all %v = %.4f\n", rr.Schedule, rr.Pall, opt.Schedule, opt.Pall)
}
