// Command ccsched runs the cache-aware control co-design case study of the
// paper end to end: WCET analysis (Table I), schedule evaluation and
// comparison (Table III), and optimal-schedule search (Section V).
//
// Usage:
//
//	ccsched [-mode compare|hybrid|exhaustive|eval] [-schedule m1,m2,m3]
//	        [-budget quick|paper] [-maxm N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

func main() {
	mode := flag.String("mode", "compare", "compare | hybrid | exhaustive | eval | wcet | timeline")
	scheduleFlag := flag.String("schedule", "3,2,3", "schedule m1,m2,... for -mode eval/timeline")
	budget := flag.String("budget", "quick", "design budget: quick | paper")
	maxM := flag.Int("maxm", 12, "burst-length cap for exhaustive search")
	flag.Parse()

	plat := wcet.PaperPlatform()
	study := apps.CaseStudy()
	fw, err := core.New(study, plat, designOptions(*budget))
	if err != nil {
		log.Fatal(err)
	}
	fw.ReportDtMax = 10e-6

	printTableI(fw)

	switch *mode {
	case "wcet":
		// Table I only (already printed).
	case "timeline":
		s := parseSchedule(*scheduleFlag, len(study))
		txt, err := sched.FormatTimeline(fw.Timings, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(txt)
	case "eval":
		s := parseSchedule(*scheduleFlag, len(study))
		ev, err := fw.EvaluateSchedule(s)
		if err != nil {
			log.Fatal(err)
		}
		printEval(ev)
	case "compare":
		rr, err := fw.EvaluateSchedule(sched.RoundRobin(len(study)))
		if err != nil {
			log.Fatal(err)
		}
		opt, err := fw.EvaluateSchedule(parseSchedule(*scheduleFlag, len(study)))
		if err != nil {
			log.Fatal(err)
		}
		printComparison(rr, opt)
	case "hybrid":
		starts := []sched.Schedule{{4, 2, 2}, {1, 2, 1}}
		res, err := fw.OptimizeHybrid(starts, search.Options{Tolerance: 0.01, MaxM: *maxM})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nHybrid search (paper Section V):")
		for _, r := range res.Runs {
			fmt.Printf("  start %v -> best %v (P_all=%.4f) after %d schedule evaluations\n",
				r.Start, r.Best, r.BestValue, r.Evaluations)
			fmt.Printf("    path: %v\n", r.Path)
		}
		fmt.Printf("  overall best: %v with P_all = %.4f\n", res.Best, res.BestValue)
	case "exhaustive":
		res, err := fw.OptimizeExhaustive(*maxM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nExhaustive search: %d schedules evaluated, %d feasible\n", res.Evaluated, res.Feasible)
		fmt.Printf("  best: %v with P_all = %.4f\n", res.Best, res.BestValue)
		fmt.Println("  full landscape (schedule, P_all, feasible, per-app settling ms):")
		for i, s := range res.All {
			ev, err := fw.EvaluateSchedule(s)
			if err != nil {
				continue
			}
			fmt.Printf("   %v  P=%8.4f feas=%-5v  ", s, res.AllOutcomes[i].Pall, res.AllOutcomes[i].Feasible)
			for _, ar := range ev.Apps {
				fmt.Printf(" %6.2f", ar.Design.SettlingTime*1e3)
			}
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func designOptions(budget string) ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	switch budget {
	case "deep":
		opt.Swarm.Particles = 64
		opt.Swarm.Iterations = 150
	case "paper":
		opt.Swarm.Particles = 32
		opt.Swarm.Iterations = 60
	default: // quick
		opt.Swarm.Particles = 16
		opt.Swarm.Iterations = 25
	}
	return opt
}

func parseSchedule(s string, n int) sched.Schedule {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		log.Fatalf("schedule %q must have %d entries", s, n)
	}
	out := make(sched.Schedule, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			log.Fatalf("bad schedule entry %q", p)
		}
		out[i] = v
	}
	return out
}

func printTableI(fw *core.Framework) {
	fmt.Println("Table I - WCET results with and without cache reuse:")
	fmt.Printf("  %-28s", "Application")
	for _, a := range fw.Apps {
		fmt.Printf("%12s", a.Name)
	}
	fmt.Println()
	row := func(label string, f func(i int) float64) {
		fmt.Printf("  %-28s", label)
		for i := range fw.Apps {
			fmt.Printf("%9.2f us", f(i))
		}
		fmt.Println()
	}
	plat := fw.Platform
	row("WCET w/o cache reuse", func(i int) float64 { return plat.CyclesToMicros(fw.WCETResults[i].ColdCycles) })
	row("Guaranteed WCET reduction", func(i int) float64 { return plat.CyclesToMicros(fw.WCETResults[i].ReductionCycles) })
	row("WCET w/ cache reuse", func(i int) float64 { return plat.CyclesToMicros(fw.WCETResults[i].WarmCycles) })
}

func printEval(ev *core.ScheduleEval) {
	fmt.Printf("\nSchedule %v: P_all = %.4f (feasible=%v)\n", ev.Schedule, ev.Pall, ev.Feasible)
	for _, ar := range ev.Apps {
		fmt.Printf("  %-4s settling %7.2f ms  (deadline %s, P=%.4f, rho=%.4f, maxU=%.3g, settled=%v)\n",
			ar.Name, ar.Design.SettlingTime*1e3, fmtMs(ar.Timing), ar.Performance,
			ar.Design.SpectralRadius, ar.Design.MaxInput, ar.Design.Settled)
	}
}

func fmtMs(as sched.AppSchedule) string {
	return fmt.Sprintf("gap %.2fms hmax %.2fms", as.Gap*1e3, as.MaxPeriod()*1e3)
}

func printComparison(rr, opt *core.ScheduleEval) {
	fmt.Println("\nTable III - control performance comparison:")
	fmt.Printf("  %-34s", "Application")
	for _, ar := range rr.Apps {
		fmt.Printf("%10s", ar.Name)
	}
	fmt.Println()
	fmt.Printf("  Settling time for %-16v", rr.Schedule)
	for _, ar := range rr.Apps {
		fmt.Printf("%7.1f ms", ar.Design.SettlingTime*1e3)
	}
	fmt.Println()
	fmt.Printf("  Settling time for %-16v", opt.Schedule)
	for _, ar := range opt.Apps {
		fmt.Printf("%7.1f ms", ar.Design.SettlingTime*1e3)
	}
	fmt.Println()
	fmt.Printf("  %-34s", "Control performance improvement")
	for i := range rr.Apps {
		s0 := rr.Apps[i].Design.SettlingTime
		s1 := opt.Apps[i].Design.SettlingTime
		fmt.Printf("%8.0f %%", 100*(s0-s1)/s0)
	}
	fmt.Println()
	fmt.Printf("\n  P_all %v = %.4f,  P_all %v = %.4f\n", rr.Schedule, rr.Pall, opt.Schedule, opt.Pall)
}
