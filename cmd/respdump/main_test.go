package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCSVToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-budget", "tiny", "-schedules", "1,1,1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "app,schedule,t_s,y\n") {
		t.Errorf("CSV header missing:\n%.120s", out)
	}
	if strings.Count(out, "\n") < 100 {
		t.Errorf("CSV suspiciously short: %d lines", strings.Count(out, "\n"))
	}
	for _, app := range []string{"C1", "C2", "C3"} {
		if !strings.Contains(out, app+",1,1,1,") {
			t.Errorf("CSV missing series for %s under (1,1,1)", app)
		}
	}
}

func TestRunWritesCSVToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig6.csv")
	var sb strings.Builder
	if err := run([]string{"-budget", "tiny", "-schedules", "1,1,1", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "app,schedule,t_s,y\n") {
		t.Error("file CSV header missing")
	}
	if !strings.Contains(sb.String(), "wrote "+path) {
		t.Errorf("stdout missing confirmation:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad schedule entry", []string{"-budget", "tiny", "-schedules", "1,x,1"}},
		{"zero burst", []string{"-budget", "tiny", "-schedules", "0,1,1"}},
		{"wrong length", []string{"-budget", "tiny", "-schedules", "1,1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}
