// Command respdump regenerates Figure 6 of the paper: the closed-loop
// system-output responses of all three applications under the
// cache-oblivious round-robin schedule and a cache-aware schedule, written
// as CSV for plotting.
//
// Usage:
//
//	respdump [-schedules "1,1,1;2,2,2"] [-budget tiny|quick|paper|deep] [-o fig6.csv]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/sched"
)

// errUsage signals a flag-parse failure the FlagSet already reported on
// stdout; main must not print it a second time.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("respdump", flag.ContinueOnError)
	fs.SetOutput(stdout)
	schedules := fs.String("schedules", "1,1,1;2,2,2", "semicolon-separated schedules to plot")
	budget := fs.String("budget", "quick", "design budget: tiny | quick | paper | deep")
	out := fs.String("o", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	fw, err := exp.DefaultFramework(exp.Budget(*budget))
	if err != nil {
		return err
	}

	var list []sched.Schedule
	for _, part := range strings.Split(*schedules, ";") {
		fields := strings.Split(part, ",")
		s := make(sched.Schedule, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				return fmt.Errorf("bad schedule %q", part)
			}
			s[i] = v
		}
		list = append(list, s)
	}

	series, err := exp.Figure6(fw, list...)
	if err != nil {
		return err
	}
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := exp.WriteFigure6CSV(w, series); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %s (%d series)\n", *out, len(series))
	}
	return nil
}
