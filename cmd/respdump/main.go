// Command respdump regenerates Figure 6 of the paper: the closed-loop
// system-output responses of all three applications under the
// cache-oblivious round-robin schedule and a cache-aware schedule, written
// as CSV for plotting.
//
// Usage:
//
//	respdump [-schedules "1,1,1;2,2,2"] [-budget quick|paper] [-o fig6.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/sched"
)

func main() {
	schedules := flag.String("schedules", "1,1,1;2,2,2", "semicolon-separated schedules to plot")
	budget := flag.String("budget", "quick", "design budget: quick | paper")
	out := flag.String("o", "", "output CSV path (default stdout)")
	flag.Parse()

	opt := exp.QuickBudget()
	if *budget == "paper" {
		opt = exp.PaperBudget()
	}
	fw, err := exp.DefaultFramework(opt)
	if err != nil {
		log.Fatal(err)
	}

	var list []sched.Schedule
	for _, part := range strings.Split(*schedules, ";") {
		fields := strings.Split(part, ",")
		s := make(sched.Schedule, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				log.Fatalf("bad schedule %q", part)
			}
			s[i] = v
		}
		list = append(list, s)
	}

	series, err := exp.Figure6(fw, list...)
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := exp.WriteFigure6CSV(w, series); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d series)\n", *out, len(series))
	}
}
