package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseStarts(t *testing.T) {
	starts, err := parseStarts("4,2,2;1,2,1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 2 || starts[0][0] != 4 || starts[1][2] != 1 {
		t.Errorf("parsed %v", starts)
	}
	for _, bad := range []string{"1,2", "1,2,x", "0,2,2", ""} {
		if _, err := parseStarts(bad, 3); err == nil {
			t.Errorf("parseStarts(%q) succeeded, want error", bad)
		}
	}
}

// TestRunProfiles exercises the -cpuprofile/-memprofile plumbing on a tiny
// hybrid-only search.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var sb strings.Builder
	args := []string{"-budget", "tiny", "-maxm", "4", "-starts", "1,1,1", "-skip-exhaustive",
		"-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad starts", []string{"-starts", "1,2", "-budget", "tiny"}},
		{"infeasible start", []string{"-starts", "30,30,30", "-budget", "tiny", "-maxm", "40"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

func TestRunHybridOnly(t *testing.T) {
	var sb strings.Builder
	args := []string{"-budget", "tiny", "-maxm", "2", "-starts", "1,1,1", "-skip-exhaustive"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Hybrid search:", "overall best:", "evaluations executed:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Exhaustive baseline") {
		t.Error("-skip-exhaustive must suppress the baseline")
	}
}

func TestRunSharedCacheWithExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("full search is slow for -short")
	}
	var sb strings.Builder
	args := []string{"-budget", "tiny", "-maxm", "2", "-starts", "1,1,1;2,1,1", "-shared-cache", "-workers", "2"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Hybrid search:", "Exhaustive baseline:", "shared cache:", "global optimum:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
