// Command schedsearch compares the paper's hybrid schedule search against
// exhaustive enumeration on the automotive case study, reporting evaluation
// counts, search paths, and the optimal schedule (Section IV/V).
//
// With -shared-cache both searches run through one sharded memoization
// cache (internal/engine/evalcache): hybrid walks execute sequentially with
// deterministic evaluation attribution, and the exhaustive baseline reuses
// every schedule the walks already evaluated, over -workers parallel
// evaluators.
//
// Usage:
//
//	schedsearch [-starts "4,2,2;1,2,1"] [-tol 0.01] [-maxm 10]
//	            [-budget tiny|quick|paper|deep] [-shared-cache] [-workers N]
//	            [-skip-exhaustive] [-cpuprofile search.cpu] [-memprofile search.mem]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/search"
)

// errUsage signals a flag-parse failure the FlagSet already reported on
// stdout; main must not print it a second time.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedsearch", flag.ContinueOnError)
	fs.SetOutput(stdout)
	startsFlag := fs.String("starts", "4,2,2;1,2,1", "semicolon-separated start schedules")
	tol := fs.Float64("tol", 0.01, "hybrid acceptance tolerance (simulated-annealing feature)")
	maxM := fs.Int("maxm", 10, "burst-length cap")
	budget := fs.String("budget", "quick", "design budget: tiny | quick | paper | deep")
	sharedCache := fs.Bool("shared-cache", false, "share one evaluation cache across starts and searches")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel evaluators for the exhaustive pass with -shared-cache (default: all cores)")
	skipExhaustive := fs.Bool("skip-exhaustive", false, "run only the hybrid search")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProf()

	fw, err := exp.DefaultFramework(exp.Budget(*budget))
	if err != nil {
		return err
	}

	starts, err := parseStarts(*startsFlag, len(fw.Apps))
	if err != nil {
		return err
	}

	opt := search.Options{Tolerance: *tol, MaxM: *maxM}
	var cache *search.Cache
	if *sharedCache {
		cache = fw.SearchCache()
		opt.Cache = cache
	}
	hy, err := fw.OptimizeHybrid(starts, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "Hybrid search:")
	for _, r := range hy.Runs {
		fmt.Fprintf(stdout, "  start %v -> best %v (P_all=%.4f) in %d evaluations\n",
			r.Start, r.Best, r.BestValue, r.Evaluations)
		fmt.Fprintf(stdout, "    path: %v\n", r.Path)
	}
	fmt.Fprintf(stdout, "  overall best: %v (P_all=%.4f)\n", hy.Best, hy.BestValue)
	fmt.Fprintf(stdout, "  evaluations executed: %d (cache hit rate %.0f%%)\n",
		hy.TotalEvaluations, 100*hy.CacheStats.HitRate())

	if *skipExhaustive {
		return stopProf()
	}
	var ex *search.ExhaustiveResult
	if cache != nil {
		ex, err = fw.OptimizeExhaustiveParallel(*maxM, *workers, cache)
	} else {
		ex, err = fw.OptimizeExhaustive(*maxM)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nExhaustive baseline: %d schedules evaluated (%d feasible)\n", ex.Evaluated, ex.Feasible)
	fmt.Fprintf(stdout, "  global optimum: %v (P_all=%.4f)\n", ex.Best, ex.BestValue)
	for _, r := range hy.Runs {
		fmt.Fprintf(stdout, "  hybrid from %v used %.1f%% of the exhaustive evaluations\n",
			r.Start, 100*float64(r.Evaluations)/float64(ex.Evaluated))
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Fprintf(stdout, "  shared cache: %d distinct evaluations for %d lookups (hit rate %.0f%%)\n",
			cache.Len(), st.Lookups(), 100*st.HitRate())
	}
	return stopProf()
}

func parseStarts(s string, n int) ([]sched.Schedule, error) {
	var out []sched.Schedule
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(part, ",")
		if len(fields) != n {
			return nil, fmt.Errorf("start %q must have %d entries", part, n)
		}
		sc := make(sched.Schedule, n)
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad burst count %q", f)
			}
			sc[i] = v
		}
		out = append(out, sc)
	}
	return out, nil
}
