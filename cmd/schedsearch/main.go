// Command schedsearch compares the paper's hybrid schedule search against
// exhaustive enumeration on the automotive case study, reporting evaluation
// counts, search paths, and the optimal schedule (Section IV/V).
//
// Usage:
//
//	schedsearch [-starts "4,2,2;1,2,1"] [-tol 0.01] [-maxm 10] [-budget quick|paper]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/sched"
	"repro/internal/search"
)

func main() {
	startsFlag := flag.String("starts", "4,2,2;1,2,1", "semicolon-separated start schedules")
	tol := flag.Float64("tol", 0.01, "hybrid acceptance tolerance (simulated-annealing feature)")
	maxM := flag.Int("maxm", 10, "burst-length cap")
	budget := flag.String("budget", "quick", "design budget: quick | paper")
	skipExhaustive := flag.Bool("skip-exhaustive", false, "run only the hybrid search")
	flag.Parse()

	opt := exp.QuickBudget()
	if *budget == "paper" {
		opt = exp.PaperBudget()
	}
	fw, err := exp.DefaultFramework(opt)
	if err != nil {
		log.Fatal(err)
	}

	starts, err := parseStarts(*startsFlag, len(fw.Apps))
	if err != nil {
		log.Fatal(err)
	}

	hy, err := fw.OptimizeHybrid(starts, search.Options{Tolerance: *tol, MaxM: *maxM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hybrid search:")
	for _, r := range hy.Runs {
		fmt.Printf("  start %v -> best %v (P_all=%.4f) in %d evaluations\n",
			r.Start, r.Best, r.BestValue, r.Evaluations)
		fmt.Printf("    path: %v\n", r.Path)
	}
	fmt.Printf("  overall best: %v (P_all=%.4f)\n", hy.Best, hy.BestValue)

	if *skipExhaustive {
		return
	}
	ex, err := fw.OptimizeExhaustive(*maxM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExhaustive baseline: %d schedules evaluated (%d feasible)\n", ex.Evaluated, ex.Feasible)
	fmt.Printf("  global optimum: %v (P_all=%.4f)\n", ex.Best, ex.BestValue)
	for _, r := range hy.Runs {
		fmt.Printf("  hybrid from %v used %.1f%% of the exhaustive evaluations\n",
			r.Start, 100*float64(r.Evaluations)/float64(ex.Evaluated))
	}
}

func parseStarts(s string, n int) ([]sched.Schedule, error) {
	var out []sched.Schedule
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(part, ",")
		if len(fields) != n {
			return nil, fmt.Errorf("start %q must have %d entries", part, n)
		}
		sc := make(sched.Schedule, n)
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad burst count %q", f)
			}
			sc[i] = v
		}
		out = append(out, sc)
	}
	return out, nil
}
