// Multi-process crash-recovery matrix: a journaled served coordinator is
// SIGKILLed by a seeded chaos schedule exactly when the first shard
// completion hits the journal (record durable, acknowledgement lost), then
// restarted on the same address against the same journal and store. The
// live sweep -remote driver and fresh workers must heal around the crash,
// the journaled-done shard must never be re-executed, and the assembled
// report must stay byte-identical to the single-process golden.
package repro

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
)

// startCoordinator launches served against the shared store+journal and
// returns the process plus the address from its banner line. The extra env
// entry (e.g. the chaos crash schedule) is appended to the inherited
// environment when non-empty.
func startCoordinator(t *testing.T, ctx context.Context, bin, addr, storeDir, journalDir, extraEnv string) (*exec.Cmd, string) {
	t.Helper()
	coord := exec.CommandContext(ctx, bin, "-addr", addr,
		"-store", storeDir, "-journal", journalDir, "-lease-ttl", "500ms")
	coord.Env = os.Environ()
	if extraEnv != "" {
		coord.Env = append(coord.Env, extraEnv)
	}
	out, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Process.Kill(); coord.Wait() })
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		t.Fatalf("coordinator printed nothing: %v", sc.Err())
	}
	fields := strings.Fields(sc.Text()) // "served listening on HOST:PORT (...)"
	if len(fields) < 4 {
		t.Fatalf("unexpected coordinator banner %q", sc.Text())
	}
	go func() { // drain recovery/log lines so the child never blocks on the pipe
		for sc.Scan() {
			fmt.Fprintln(os.Stderr, "[coord]", sc.Text())
		}
	}()
	return coord, fields[3]
}

func TestCrashRecoveryMatrix(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	binDir := t.TempDir()
	servedBin := buildBinary(t, ctx, binDir, "cmd/served")
	sweepBin := buildBinary(t, ctx, binDir, "cmd/sweep")
	storeDir, journalDir := t.TempDir(), t.TempDir()

	// Coordinator A is doomed: journal append #1 is the driver's Submit,
	// append #2 the first shard Complete — the chaos schedule lets that
	// record reach disk and then SIGKILLs the process before it can answer.
	coordA, addr := startCoordinator(t, ctx, servedBin, "127.0.0.1:0",
		storeDir, journalDir, "CHAOS_CRASH=journal-append:2")
	url := "http://" + addr

	// The driver rides through the outage: a 1s poll gives it 8+ seconds of
	// consecutive-failure tolerance, far more than the restart below needs.
	var report, progress bytes.Buffer
	sweep := exec.CommandContext(ctx, sweepBin, "-remote", url, "-shards", "3",
		"-n", "6", "-seed", "42", "-exhaustive", "-workers", "2",
		"-remote-poll", "1s", "-remote-timeout", "2m")
	sweep.Stdout, sweep.Stderr = &report, &progress
	if err := sweep.Start(); err != nil {
		t.Fatal(err)
	}

	// Worker 1 triggers the crash: its first Complete is journal append #2.
	w1 := exec.CommandContext(ctx, servedBin, "-worker", "-coordinator", url,
		"-name", "w1", "-lease-ttl", "500ms")
	w1.Stdout = os.Stderr
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w1.Process.Kill(); w1.Wait() })
	if err := coordA.Wait(); err == nil {
		t.Fatal("coordinator A exited cleanly; the chaos schedule should have SIGKILLed it")
	}
	w1.Process.Kill()
	w1.Wait()

	// The journal — inspected cold, exactly as a restart would read it —
	// must hold the submit plus the single durable-but-unacknowledged
	// completion.
	doneShards := map[int]bool{}
	{
		j, err := fabric.OpenJournal(journalDir, fabric.JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range j.Replayed() {
			if rec.Op == fabric.OpComplete {
				doneShards[rec.Shard] = true
			}
		}
		j.Close()
		if len(doneShards) != 1 {
			t.Fatalf("journal after crash records %d done shard(s) (%v), want exactly 1", len(doneShards), doneShards)
		}
	}

	// Coordinator B: same address, same journal, same store, no chaos. It
	// must replay promptly and report ready while the driver is still
	// within its poll-failure budget.
	_, _ = startCoordinator(t, ctx, servedBin, addr, storeDir, journalDir, "")
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("restarted coordinator never became ready: err=%v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Fresh workers drain the recovered job; their lease logs prove the
	// journaled-done shard is never handed out again.
	var logs [2]bytes.Buffer
	var workers []*exec.Cmd
	for i, name := range []string{"w2", "w3"} {
		w := exec.CommandContext(ctx, servedBin, "-worker", "-coordinator", url,
			"-name", name, "-drain", "-lease-ttl", "500ms")
		w.Stdout, w.Stderr = &logs[i], os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	for _, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("drain worker failed: %v", err)
		}
	}
	if err := sweep.Wait(); err != nil {
		t.Fatalf("sweep -remote failed: %v\nprogress:\n%s", err, progress.String())
	}

	// No journaled-done shard re-executed: the recovered coordinator's
	// workers between them lease and run exactly the other shards.
	leaseRe := regexp.MustCompile(`leased \S+ shard (\d+)/`)
	exitRe := regexp.MustCompile(`worker \S+: (\d+) shard\(s\)`)
	totalShards := 0
	for i, name := range []string{"w2", "w3"} {
		text := logs[i].String()
		for _, m := range leaseRe.FindAllStringSubmatch(text, -1) {
			shard, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatal(err)
			}
			if doneShards[shard] {
				t.Errorf("worker %s re-leased journaled-done shard %d:\n%s", name, shard, text)
			}
		}
		m := exitRe.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("worker %s printed no exit summary:\n%s", name, text)
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		totalShards += n
	}
	if want := 3 - len(doneShards); totalShards != want {
		t.Errorf("post-restart workers completed %d shard(s), want %d (journaled-done shard must not re-execute)", totalShards, want)
	}

	// Byte-identical to the single-process golden despite the crash.
	want, err := os.ReadFile(filepath.Join("cmd", "sweep", "testdata", "store_sweep.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if report.String() != string(want) {
		t.Errorf("crash-recovered report diverged from golden:\n--- got ---\n%s--- want ---\n%s",
			report.String(), want)
	}
}
