#!/usr/bin/env bash
# tools/bench.sh — run the PR-tracked benchmark set with benchstat-comparable
# output (the plain `go test -bench` text format benchstat consumes).
#
# Usage:
#   tools/bench.sh [output-file]           # full tracked set, BENCH_COUNT runs
#   BENCH_COUNT=10 tools/bench.sh before.txt
#   BENCH_PATTERN='BenchmarkSweepParallel' tools/bench.sh
#   BENCH_SMOKE=1 tools/bench.sh           # one iteration per benchmark (CI)
#
# Typical before/after comparison:
#   git stash && tools/bench.sh /tmp/before.txt && git stash pop
#   tools/bench.sh /tmp/after.txt
#   benchstat /tmp/before.txt /tmp/after.txt
set -euo pipefail
cd "$(dirname "$0")/.."

count="${BENCH_COUNT:-5}"
benchtime="${BENCH_TIME:-}"
pattern="${BENCH_PATTERN:-^(BenchmarkClosedLoopSimulation|BenchmarkSearchHybrid|BenchmarkJointCaseStudy|BenchmarkMulticoreCoDesign|BenchmarkSweepParallel|BenchmarkHybridSharedCache|BenchmarkWCETAnalysis|BenchmarkCacheSimulation|BenchmarkExpm)$}"
out="${1:-}"

args=(test -run '^$' -bench "$pattern" -benchmem -count "$count")
if [ -n "${BENCH_SMOKE:-}" ]; then
  args+=(-benchtime 1x -count 1)
elif [ -n "$benchtime" ]; then
  args+=(-benchtime "$benchtime")
fi
args+=(.)

if [ -n "$out" ]; then
  go "${args[@]}" | tee "$out"
else
  go "${args[@]}"
fi
